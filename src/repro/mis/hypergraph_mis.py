"""Weighted independent set on hypergraphs with edges of size 2 and 3.

An independent set of a hypergraph selects vertices so that no hyperedge
is *fully* contained in the selection (partial overlap is allowed). This
matches the conflict-hypergraph semantics: a 3-conflict only forbids
choosing all three sets simultaneously.

Following the paper's reference to partitioning-based algorithms for
sparse bounded-degree hypergraphs (Halldórsson–Losievskaja), the solver
partitions the instance into connected components and solves each small
component exactly by branch-and-bound, falling back to a greedy +
add-move heuristic for components that exhaust the node budget.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.mis.exact import BudgetExceededError
from repro.observability import get_tracer

Vertex = Hashable


@dataclass
class WeightedHypergraph:
    """Vertices with weights plus hyperedges of size 2 or 3."""

    vertices: list[Vertex]
    weights: dict[Vertex, float]
    edges: list[frozenset] = field(default_factory=list)

    def __post_init__(self) -> None:
        for edge in self.edges:
            if not 2 <= len(edge) <= 3:
                raise ValueError(f"hyperedge size must be 2 or 3: {set(edge)}")

    def is_independent(self, selected: set[Vertex]) -> bool:
        return all(not edge <= selected for edge in self.edges)

    def weight_of(self, selected: Iterable[Vertex]) -> float:
        return sum(self.weights[v] for v in selected)

    def incidence(self) -> dict[Vertex, list[int]]:
        """Vertex -> indices of the edges containing it."""
        inc: dict[Vertex, list[int]] = {v: [] for v in self.vertices}
        for i, edge in enumerate(self.edges):
            for v in edge:
                inc[v].append(i)
        return inc

    def connected_components(self) -> list[set[Vertex]]:
        """Components of the bipartite vertex/edge incidence structure."""
        parent: dict[Vertex, Vertex] = {v: v for v in self.vertices}

        def find(v: Vertex) -> Vertex:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for edge in self.edges:
            members = list(edge)
            root = find(members[0])
            for other in members[1:]:
                parent[find(other)] = root
        groups: dict[Vertex, set[Vertex]] = {}
        for v in self.vertices:
            groups.setdefault(find(v), set()).add(v)
        return list(groups.values())


class _HyperBranchAndBound:
    def __init__(self, hg: WeightedHypergraph, node_budget: int) -> None:
        self.hg = hg
        self.node_budget = node_budget
        self.nodes_used = 0
        # Order heaviest-first so good solutions appear early.
        self.order = sorted(
            hg.vertices, key=lambda v: (-hg.weights[v], str(v))
        )
        self.suffix = [0.0] * (len(self.order) + 1)
        for i in range(len(self.order) - 1, -1, -1):
            self.suffix[i] = self.suffix[i + 1] + max(
                0.0, hg.weights[self.order[i]]
            )
        self.incidence = hg.incidence()
        self.chosen_count = [0] * len(hg.edges)
        self.excluded_count = [0] * len(hg.edges)
        self.best_weight = -1.0
        self.best_set: set[Vertex] = set()
        self.current: set[Vertex] = set()
        self.current_weight = 0.0

    def solve(self) -> set[Vertex]:
        self._recurse(0)
        return self.best_set

    def _recurse(self, index: int) -> None:
        self.nodes_used += 1
        if self.nodes_used > self.node_budget:
            raise BudgetExceededError(
                f"hypergraph MIS exceeded {self.node_budget} nodes"
            )
        if self.current_weight > self.best_weight:
            self.best_weight = self.current_weight
            self.best_set = set(self.current)
        if index == len(self.order):
            return
        if self.current_weight + self.suffix[index] <= self.best_weight:
            return
        v = self.order[index]

        # Branch 1: choose v, unless that fully selects some edge.
        violating = any(
            self.chosen_count[e] == len(self.hg.edges[e]) - 1
            and self.excluded_count[e] == 0
            for e in self.incidence[v]
        )
        if not violating:
            self.current.add(v)
            self.current_weight += self.hg.weights[v]
            for e in self.incidence[v]:
                self.chosen_count[e] += 1
            self._recurse(index + 1)
            self.current.remove(v)
            self.current_weight -= self.hg.weights[v]
            for e in self.incidence[v]:
                self.chosen_count[e] -= 1

        # Branch 2: exclude v.
        for e in self.incidence[v]:
            self.excluded_count[e] += 1
        self._recurse(index + 1)
        for e in self.incidence[v]:
            self.excluded_count[e] -= 1


def greedy_hypergraph_mis(hg: WeightedHypergraph) -> set[Vertex]:
    """Heaviest-first greedy construction with a final add-move pass."""
    incidence = hg.incidence()
    order = sorted(
        hg.vertices,
        key=lambda v: (
            -hg.weights[v] / (len(incidence[v]) + 1),
            str(v),
        ),
    )
    chosen: set[Vertex] = set()
    for v in order:
        ok = all(
            not (hg.edges[e] - {v}) <= chosen for e in incidence[v]
        )
        if ok:
            chosen.add(v)
    # Add-move pass in raw-weight order (some light vertices may now fit).
    for v in sorted(hg.vertices, key=lambda v: (-hg.weights[v], str(v))):
        if v in chosen:
            continue
        if all(not (hg.edges[e] - {v}) <= chosen for e in incidence[v]):
            chosen.add(v)
    return chosen


def _subhypergraph(
    hg: WeightedHypergraph, keep: set[Vertex]
) -> WeightedHypergraph:
    return WeightedHypergraph(
        vertices=[v for v in hg.vertices if v in keep],
        weights={v: hg.weights[v] for v in keep},
        edges=[e for e in hg.edges if e <= keep],
    )


def solve_hypergraph_mis(
    hg: WeightedHypergraph,
    node_budget: int = 500_000,
    exact: bool = True,
    max_exact_component: int = 2000,
) -> set[Vertex]:
    """Partition into components; solve each exactly, greedy on overflow."""
    needed_depth = len(hg.vertices) + 100
    if sys.getrecursionlimit() < needed_depth:
        sys.setrecursionlimit(needed_depth)
    solution: set[Vertex] = set()
    remaining = node_budget
    tracer = get_tracer()
    for component in sorted(hg.connected_components(), key=len):
        sub = _subhypergraph(hg, component)
        if not sub.edges:
            solution |= component
            continue
        tracer.count("mis.components")
        attempt_exact = (
            exact and remaining > 0 and len(component) <= max_exact_component
        )
        if attempt_exact:
            solver = _HyperBranchAndBound(sub, remaining)
            try:
                solution |= solver.solve()
                remaining -= solver.nodes_used
                tracer.count("mis.nodes_expanded", solver.nodes_used)
                continue
            except BudgetExceededError:
                tracer.count("mis.nodes_expanded", solver.nodes_used)
                remaining = 0
        tracer.count("mis.greedy_fallbacks")
        solution |= greedy_hypergraph_mis(sub)
    return solution
