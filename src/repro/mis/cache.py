"""Cross-sweep memo cache for solved MIS components.

The Fig. 8g/8h threshold sweeps re-run CTCR over a δ grid on one
instance. Because conflicts only accumulate monotonically-ish as δ
moves, consecutive sweep points share most of their conflict-hypergraph
*components* verbatim — same set ids, same weights, same edges. Solving
a component is the expensive part, so identical components are solved
once per process and replayed from this cache afterwards.

The key is a canonical content hash of the component **plus** every
solver knob that can change its answer (``exact``, ``node_budget``,
``max_exact_component``). Vertices are canonicalized through ``repr``,
which is stable across processes for the int/tuple vertices used here
(hash randomization never enters the key), so cached solutions are
valid to replay verbatim: equal key implies equal vertex ids.

Eviction is FIFO with a bounded entry count — sweep workloads revisit
recent structures, and components are small, so a simple bound keeps
memory flat without LRU bookkeeping.

Cross-build persistence (``repro.incremental``) builds on the same key:
a cache constructed with ``keep_payloads=True`` additionally retains
each solved component's content (vertices, weights, edges) next to its
solution, :meth:`to_payload_dict` serializes those payloads, and
:meth:`seed_from_payload` replays them into a fresh cache under a sid
rename map. Because the key hashes the *weights* along with the member
sets, a reweighted component re-keys automatically — a reweight-only
delta can never resurrect a stale MWIS solution (pinned by the
regression tests in tests/test_incremental_properties.py).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.mis.hypergraph_mis import WeightedHypergraph

__all__ = ["MISComponentCache", "get_mis_cache", "clear_mis_cache"]

Vertex = Hashable

# JSON-safe recursive vertex encoding. Component vertices are input-set
# ids (ints) or kernel fold markers (tuples mixing strings and nested
# vertices, e.g. ``("__fold2__", v, u, x)``).


def _encode_vertex(v: Vertex) -> list:
    if isinstance(v, bool):  # bool is an int subclass; never a vertex
        raise TypeError(f"unsupported vertex type: {v!r}")
    if isinstance(v, int):
        return ["i", v]
    if isinstance(v, str):
        return ["s", v]
    if isinstance(v, tuple):
        return ["t", [_encode_vertex(x) for x in v]]
    raise TypeError(f"unsupported vertex type: {v!r}")


def _decode_vertex(payload: list) -> Vertex:
    tag, value = payload
    if tag == "i":
        return int(value)
    if tag == "s":
        return value
    if tag == "t":
        return tuple(_decode_vertex(x) for x in value)
    raise ValueError(f"unknown vertex tag: {tag!r}")


def _relabel_vertex(v: Vertex, sid_map: dict[int, int]) -> Vertex:
    """Map every embedded sid through ``sid_map`` (KeyError if unmapped)."""
    if isinstance(v, bool):
        raise TypeError(f"unsupported vertex type: {v!r}")
    if isinstance(v, int):
        return sid_map[v]
    if isinstance(v, str):
        return v
    if isinstance(v, tuple):
        return tuple(_relabel_vertex(x, sid_map) for x in v)
    raise TypeError(f"unsupported vertex type: {v!r}")


class MISComponentCache:
    """Bounded FIFO cache: canonical component key -> solution set.

    With ``keep_payloads=True`` the cache also remembers each solved
    component's content so it can be serialized and replayed into a
    later build (see module docstring).
    """

    def __init__(
        self, max_entries: int = 4096, keep_payloads: bool = False
    ) -> None:
        self.max_entries = max_entries
        self.keep_payloads = keep_payloads
        self._entries: OrderedDict[str, frozenset] = OrderedDict()
        self._payloads: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        sub: "WeightedHypergraph",
        node_budget: int,
        exact: bool,
        max_exact_component: int,
    ) -> str:
        """Canonical content hash of a component + solver knobs."""
        canon = (
            "hmis-v1",
            bool(exact),
            int(node_budget),
            int(max_exact_component),
            sorted((repr(v), sub.weights[v]) for v in sub.vertices),
            sorted(sorted(repr(v) for v in edge) for edge in sub.edges),
        )
        return hashlib.sha1(repr(canon).encode()).hexdigest()

    def get(self, key: str) -> set | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return set(entry)

    def put(
        self,
        key: str,
        solution: set,
        component: "WeightedHypergraph | None" = None,
        knobs: tuple[int, bool, int] | None = None,
    ) -> None:
        """Store a solved component.

        ``component``/``knobs`` are only retained when the cache was
        built with ``keep_payloads=True``; they are what
        :meth:`to_payload_dict` later serializes for cross-build reuse.
        """
        if key in self._entries:
            return
        self._entries[key] = frozenset(solution)
        if self.keep_payloads and component is not None and knobs is not None:
            self._payloads[key] = {
                "knobs": [int(knobs[0]), bool(knobs[1]), int(knobs[2])],
                "vertices": [
                    [_encode_vertex(v), component.weights[v]]
                    for v in component.vertices
                ],
                "edges": [
                    [_encode_vertex(v) for v in edge]
                    for edge in component.edges
                ],
                "solution": [_encode_vertex(v) for v in solution],
            }
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._payloads.pop(evicted, None)

    def clear(self) -> None:
        self._entries.clear()
        self._payloads.clear()
        self.hits = 0
        self.misses = 0

    # -- cross-build persistence ------------------------------------------

    def to_payload_dict(self) -> dict:
        """JSON-ready payloads of every retained solved component."""
        return {
            "format": "mis-payload-v1",
            "entries": [dict(p) for p in self._payloads.values()],
        }

    def seed_from_payload(
        self,
        payload: dict,
        sid_map: dict[int, int],
        node_budget: int,
        exact: bool,
        max_exact_component: int,
    ) -> int:
        """Replay serialized components into this cache under a rename.

        Each entry's vertices are relabeled through ``sid_map`` (old sid
        -> new sid); entries touching an unmapped sid — a removed set —
        are skipped, as are entries solved under different solver knobs.
        Keys are recomputed from the relabeled content, so a seeded
        entry hits only when the *new* build produces a component with
        identical members, weights, and edges. Returns the number of
        entries seeded.
        """
        from repro.mis.hypergraph_mis import WeightedHypergraph

        knobs = [int(node_budget), bool(exact), int(max_exact_component)]
        seeded = 0
        for entry in payload.get("entries", []):
            if list(entry.get("knobs", [])) != knobs:
                continue
            try:
                vertices = [
                    (_relabel_vertex(_decode_vertex(enc), sid_map), weight)
                    for enc, weight in entry["vertices"]
                ]
                edges = [
                    frozenset(
                        _relabel_vertex(_decode_vertex(enc), sid_map)
                        for enc in edge
                    )
                    for edge in entry["edges"]
                ]
                solution = {
                    _relabel_vertex(_decode_vertex(enc), sid_map)
                    for enc in entry["solution"]
                }
            except KeyError:
                continue  # touches a removed set
            sub = WeightedHypergraph(
                vertices=[v for v, _ in vertices],
                weights=dict(vertices),
                edges=edges,
            )
            key = self.key(sub, node_budget, exact, max_exact_component)
            self.put(
                key,
                solution,
                component=sub,
                knobs=(node_budget, exact, max_exact_component),
            )
            seeded += 1
        return seeded


_GLOBAL_CACHE: MISComponentCache | None = None


def get_mis_cache() -> MISComponentCache:
    """Process-global cache shared by every CTCR build in this process."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = MISComponentCache()
    return _GLOBAL_CACHE


def clear_mis_cache() -> None:
    """Reset the process-global cache (tests, benchmark baselines)."""
    if _GLOBAL_CACHE is not None:
        _GLOBAL_CACHE.clear()
