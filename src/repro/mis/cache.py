"""Cross-sweep memo cache for solved MIS components.

The Fig. 8g/8h threshold sweeps re-run CTCR over a δ grid on one
instance. Because conflicts only accumulate monotonically-ish as δ
moves, consecutive sweep points share most of their conflict-hypergraph
*components* verbatim — same set ids, same weights, same edges. Solving
a component is the expensive part, so identical components are solved
once per process and replayed from this cache afterwards.

The key is a canonical content hash of the component **plus** every
solver knob that can change its answer (``exact``, ``node_budget``,
``max_exact_component``). Vertices are canonicalized through ``repr``,
which is stable across processes for the int/tuple vertices used here
(hash randomization never enters the key), so cached solutions are
valid to replay verbatim: equal key implies equal vertex ids.

Eviction is FIFO with a bounded entry count — sweep workloads revisit
recent structures, and components are small, so a simple bound keeps
memory flat without LRU bookkeeping.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.mis.hypergraph_mis import WeightedHypergraph

__all__ = ["MISComponentCache", "get_mis_cache", "clear_mis_cache"]

Vertex = Hashable


class MISComponentCache:
    """Bounded FIFO cache: canonical component key -> solution set."""

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[str, frozenset] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        sub: "WeightedHypergraph",
        node_budget: int,
        exact: bool,
        max_exact_component: int,
    ) -> str:
        """Canonical content hash of a component + solver knobs."""
        canon = (
            "hmis-v1",
            bool(exact),
            int(node_budget),
            int(max_exact_component),
            sorted((repr(v), sub.weights[v]) for v in sub.vertices),
            sorted(sorted(repr(v) for v in edge) for edge in sub.edges),
        )
        return hashlib.sha1(repr(canon).encode()).hexdigest()

    def get(self, key: str) -> set | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return set(entry)

    def put(self, key: str, solution: set) -> None:
        if key in self._entries:
            return
        self._entries[key] = frozenset(solution)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_GLOBAL_CACHE: MISComponentCache | None = None


def get_mis_cache() -> MISComponentCache:
    """Process-global cache shared by every CTCR build in this process."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = MISComponentCache()
    return _GLOBAL_CACHE


def clear_mis_cache() -> None:
    """Reset the process-global cache (tests, benchmark baselines)."""
    if _GLOBAL_CACHE is not None:
        _GLOBAL_CACHE.clear()
