"""Kernelization reductions for maximum-weight independent set.

These are the classic weighted reductions used by practical MWIS solvers
(Lamm et al., ALENEX'19 — the solver the paper's CTCR employs):

* **isolated vertex** — a vertex with no neighbours is always taken;
* **neighbourhood removal** — a vertex at least as heavy as its whole
  neighbourhood is always taken;
* **domination** — if ``N[u] ⊆ N[v]`` and ``w(v) ≤ w(u)`` then some
  optimal solution avoids ``v``, so ``v`` is removed;
* **weighted degree-1 fold** — a pendant vertex ``v`` with neighbour
  ``u``: when ``w(v) ≥ w(u)``, take ``v``; otherwise remove ``v`` and
  charge its weight to ``u`` (``w(u) -= w(v)``), remembering that ``v``
  re-enters the solution whenever ``u`` is left out;
* **twins** — non-adjacent vertices with identical neighbourhoods are
  always taken together or not at all, so they merge into one vertex
  carrying the combined weight;
* **simplicial vertex** — when ``N(v)`` is a clique and ``w(v)`` is at
  least every neighbour's weight, some optimal solution takes ``v``
  (at most one clique member can be chosen; swapping it for ``v`` never
  loses weight);
* **weighted degree-2 fold** — a vertex ``v`` with non-adjacent
  neighbours ``u, x`` where ``max(w(u), w(x)) ≤ w(v) < w(u) + w(x)``
  folds the triple into a synthetic vertex of weight
  ``w(u) + w(x) − w(v)`` adjacent to ``N(u) ∪ N(x) \\ {v}``: choosing the
  synthetic vertex later means "take u and x", not choosing it means
  "take v".

Reductions shrink the conflict graphs dramatically (they are sparse in
practice, per the paper), letting the exact branch-and-bound finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mis.graph import Vertex, WeightedGraph


@dataclass
class ReductionResult:
    """Outcome of kernelizing a graph.

    ``kernel`` is the reduced graph; ``chosen`` vertices are already in
    the solution; ``folds`` is a replay stack of ``(pendant, neighbour)``
    pairs, applied last-to-first by :func:`expand_solution`.
    """

    kernel: WeightedGraph
    chosen: set[Vertex] = field(default_factory=set)
    offset: float = 0.0
    # Chronological replay log. A ("fold", pendant, neighbour) event puts
    # the pendant in the solution when the neighbour stays out; a
    # ("twin", absorbed, survivor) event puts the absorbed vertex in
    # whenever the survivor is in; a ("fold2", (v, u, x), synthetic)
    # event resolves to {u, x} when the synthetic vertex was chosen and
    # to {v} otherwise. Replayed in reverse by :func:`expand_solution` —
    # the order matters because one event's subject may be another's
    # object.
    events: list[tuple] = field(default_factory=list)

    @property
    def folds(self) -> list[tuple[Vertex, Vertex]]:
        """Fold events (pendant, neighbour), chronological."""
        return [(a, b) for kind, a, b in self.events if kind == "fold"]

    @property
    def twins(self) -> list[tuple[Vertex, Vertex]]:
        """Twin events (absorbed, survivor), chronological."""
        return [(a, b) for kind, a, b in self.events if kind == "twin"]


def reduce_graph(graph: WeightedGraph) -> ReductionResult:
    """Exhaustively apply all reductions; the input graph is not mutated."""
    g = graph.copy()
    result = ReductionResult(kernel=g)
    dirty = set(g.vertices())
    fold2_counter = 0
    while dirty:
        v = dirty.pop()
        if v not in g:
            continue
        neighbors = g.neighbors(v)
        weight = g.weights[v]

        # Isolated vertex / neighbourhood removal.
        if weight >= sum(g.weights[u] for u in neighbors):
            result.chosen.add(v)
            result.offset += weight
            affected = set()
            for u in list(neighbors):
                affected |= g.neighbors(u)
            g.remove_vertex(v)
            for u in list(neighbors):
                if u in g:
                    g.remove_vertex(u)
            dirty |= {u for u in affected if u in g.adj}
            continue

        # Weighted degree-1 fold (the heavy-pendant case was handled
        # above by neighbourhood removal).
        if len(neighbors) == 1:
            (u,) = neighbors
            result.events.append(("fold", v, u))
            result.offset += weight
            g.weights[u] -= weight
            g.remove_vertex(v)
            dirty.add(u)
            dirty |= g.neighbors(u)
            continue

        # Weighted degree-2 fold: non-adjacent neighbours u, x with
        # max(w(u), w(x)) <= w(v) < w(u) + w(x) fold into one synthetic
        # vertex of weight w(u) + w(x) - w(v).
        if len(neighbors) == 2:
            u, x = tuple(neighbors)
            non_adjacent = u not in g.neighbors(x)
            wu, wx = g.weights[u], g.weights[x]
            if non_adjacent and max(wu, wx) <= weight < wu + wx:
                synthetic = ("__fold2__", fold2_counter)
                fold2_counter += 1
                merged_neighbors = (g.neighbors(u) | g.neighbors(x)) - {v}
                g.add_vertex(synthetic, wu + wx - weight)
                for n in merged_neighbors:
                    g.add_edge(synthetic, n)
                result.events.append(("fold2", (v, u, x), synthetic))
                result.offset += weight
                for gone in (v, u, x):
                    g.remove_vertex(gone)
                dirty.add(synthetic)
                dirty |= {n for n in merged_neighbors if n in g.adj}
                continue

        # Simplicial vertex: the neighbourhood is a clique and v is its
        # heaviest member -> take v.
        if neighbors and weight >= max(g.weights[u] for u in neighbors):
            is_clique = all(
                (neighbors - {u} - g.neighbors(u)) == set()
                for u in neighbors
            )
            if is_clique:
                result.chosen.add(v)
                result.offset += weight
                affected = set()
                for u in list(neighbors):
                    affected |= g.neighbors(u)
                g.remove_vertex(v)
                for u in list(neighbors):
                    if u in g:
                        g.remove_vertex(u)
                dirty |= {u for u in affected if u in g.adj}
                continue

        # Twins: a non-adjacent vertex with the same neighbourhood merges
        # into v, combining weights.
        twin = None
        if neighbors:
            probe = next(iter(neighbors))
            for u in g.neighbors(probe):
                if u != v and u not in neighbors and g.neighbors(u) == neighbors:
                    twin = u
                    break
        if twin is not None:
            result.events.append(("twin", twin, v))
            g.weights[v] += g.weights[twin]
            g.remove_vertex(twin)
            dirty.add(v)
            dirty |= set(neighbors)
            continue

        # Domination: v removable if a neighbour u dominates it.
        closed_v = neighbors | {v}
        dominated = False
        for u in neighbors:
            if g.weights[u] >= weight and (g.neighbors(u) | {u}) <= closed_v:
                dominated = True
                break
        if dominated:
            affected = set(neighbors)
            g.remove_vertex(v)
            dirty |= {u for u in affected if u in g.adj}
    return result


def expand_solution(
    result: ReductionResult, kernel_solution: set[Vertex]
) -> set[Vertex]:
    """Lift a kernel solution back to the original graph.

    Events replay in reverse chronological order: a folded pendant joins
    exactly when its neighbour stayed out; an absorbed twin joins exactly
    when its survivor did.
    """
    solution = set(kernel_solution) | set(result.chosen)
    for kind, subject, anchor in reversed(result.events):
        if kind == "fold":
            if anchor not in solution:
                solution.add(subject)
        elif kind == "twin":
            if anchor in solution:
                solution.add(subject)
        else:  # fold2: subject is (v, u, x), anchor the synthetic vertex
            v, u, x = subject
            if anchor in solution:
                solution.discard(anchor)
                solution.add(u)
                solution.add(x)
            else:
                solution.add(v)
    return solution
