"""Exact maximum-weight independent set via branch-and-bound.

The pipeline mirrors practical exact solvers (Lamm et al., ALENEX'19,
which the paper's CTCR uses): kernelization reductions, connected-
component decomposition, then branch-and-bound with a greedy weighted
clique-cover upper bound. A node budget guards against pathological
instances; exceeding it raises :class:`BudgetExceededError` so callers
can fall back to the greedy solver.
"""

from __future__ import annotations

import sys

from repro.core.exceptions import SolverError
from repro.mis.graph import Vertex, WeightedGraph
from repro.mis.reductions import expand_solution, reduce_graph
from repro.observability import get_tracer


class BudgetExceededError(SolverError):
    """The branch-and-bound node budget was exhausted."""


def clique_cover_bound(graph: WeightedGraph, alive: set[Vertex]) -> float:
    """Upper bound on the MWIS weight of ``graph[alive]``.

    Vertices are greedily packed into cliques; an independent set takes
    at most one vertex per clique, so the sum of per-clique maximum
    weights bounds the optimum.
    """
    order = sorted(alive, key=lambda v: -graph.weights[v])
    cliques: list[tuple[set[Vertex], float]] = []
    bound = 0.0
    for v in order:
        nbrs = graph.adj[v]
        placed = False
        for members, _max_w in cliques:
            if members <= nbrs:
                members.add(v)
                placed = True
                break
        if not placed:
            cliques.append(({v}, graph.weights[v]))
            bound += graph.weights[v]
    return bound


class _BranchAndBound:
    def __init__(self, graph: WeightedGraph, node_budget: int) -> None:
        self.graph = graph
        self.node_budget = node_budget
        self.nodes_used = 0
        self.best_weight = -1.0
        self.best_set: set[Vertex] = set()

    def solve(self) -> set[Vertex]:
        self._recurse(set(self.graph.vertices()), set(), 0.0)
        return self.best_set

    def _recurse(
        self, alive: set[Vertex], chosen: set[Vertex], weight: float
    ) -> None:
        self.nodes_used += 1
        if self.nodes_used > self.node_budget:
            raise BudgetExceededError(
                f"MWIS branch-and-bound exceeded {self.node_budget} nodes"
            )
        graph = self.graph

        # Strip vertices with no alive neighbours — always taken.
        free = [v for v in alive if not (graph.adj[v] & alive)]
        if free:
            alive = alive - set(free)
            chosen = chosen | set(free)
            weight += sum(graph.weights[v] for v in free)

        if weight > self.best_weight:
            self.best_weight = weight
            self.best_set = set(chosen)
        if not alive:
            return
        if weight + clique_cover_bound(graph, alive) <= self.best_weight:
            return

        pivot = max(alive, key=lambda v: (len(graph.adj[v] & alive), graph.weights[v]))

        # Branch 1: include the pivot (removes its neighbourhood).
        self._recurse(
            alive - (graph.adj[pivot] | {pivot}),
            chosen | {pivot},
            weight + graph.weights[pivot],
        )
        # Branch 2: exclude the pivot.
        self._recurse(alive - {pivot}, chosen, weight)


def solve_exact(
    graph: WeightedGraph, node_budget: int = 500_000
) -> set[Vertex]:
    """Optimal MWIS of a weighted graph.

    Applies reductions, splits into connected components, and solves each
    component by branch-and-bound. Raises :class:`BudgetExceededError`
    when the combined node budget runs out.
    """
    reduced = reduce_graph(graph)
    kernel = reduced.kernel
    # Branching depth is bounded by the largest component size.
    needed_depth = len(kernel) + 100
    if sys.getrecursionlimit() < needed_depth:
        sys.setrecursionlimit(needed_depth)
    kernel_solution: set[Vertex] = set()
    remaining_budget = node_budget
    tracer = get_tracer()
    for component in kernel.connected_components():
        sub = kernel.subgraph(component)
        solver = _BranchAndBound(sub, remaining_budget)
        tracer.count("mis.components")
        try:
            kernel_solution |= solver.solve()
        finally:
            # Recorded even when the budget blows: partial work is real work.
            tracer.count("mis.nodes_expanded", solver.nodes_used)
        remaining_budget -= solver.nodes_used
    return expand_solution(reduced, kernel_solution)
