"""Lightweight weighted undirected graphs for the MIS solvers."""

from __future__ import annotations

from typing import Hashable, Iterable

Vertex = Hashable


class WeightedGraph:
    """Undirected graph with vertex weights, stored as adjacency sets."""

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        weights: dict[Vertex, float] | None = None,
    ) -> None:
        self.adj: dict[Vertex, set[Vertex]] = {v: set() for v in vertices}
        self.weights: dict[Vertex, float] = {
            v: (weights or {}).get(v, 1.0) for v in self.adj
        }

    @staticmethod
    def from_edges(
        vertices: Iterable[Vertex],
        edges: Iterable[tuple[Vertex, Vertex]],
        weights: dict[Vertex, float] | None = None,
    ) -> "WeightedGraph":
        graph = WeightedGraph(vertices, weights)
        for a, b in edges:
            graph.add_edge(a, b)
        return graph

    def add_vertex(self, v: Vertex, weight: float = 1.0) -> None:
        if v not in self.adj:
            self.adj[v] = set()
            self.weights[v] = weight

    def add_edge(self, a: Vertex, b: Vertex) -> None:
        if a == b:
            raise ValueError("self-loops are not allowed in an MIS instance")
        if a not in self.adj or b not in self.adj:
            raise KeyError("both endpoints must exist before adding an edge")
        self.adj[a].add(b)
        self.adj[b].add(a)

    def remove_vertex(self, v: Vertex) -> None:
        for u in self.adj.pop(v):
            self.adj[u].discard(v)
        del self.weights[v]

    def neighbors(self, v: Vertex) -> set[Vertex]:
        return self.adj[v]

    def degree(self, v: Vertex) -> int:
        return len(self.adj[v])

    def __len__(self) -> int:
        return len(self.adj)

    def __contains__(self, v: Vertex) -> bool:
        return v in self.adj

    @property
    def num_edges(self) -> int:
        return sum(len(n) for n in self.adj.values()) // 2

    def vertices(self) -> list[Vertex]:
        return list(self.adj)

    def edges(self) -> list[tuple[Vertex, Vertex]]:
        seen: set[frozenset] = set()
        result = []
        for a, nbrs in self.adj.items():
            for b in nbrs:
                key = frozenset((a, b))
                if key not in seen:
                    seen.add(key)
                    result.append((a, b))
        return result

    def subgraph(self, keep: Iterable[Vertex]) -> "WeightedGraph":
        keep_set = set(keep)
        sub = WeightedGraph(keep_set, self.weights)
        for v in keep_set:
            sub.adj[v] = self.adj[v] & keep_set
        return sub

    def copy(self) -> "WeightedGraph":
        clone = WeightedGraph(self.adj, self.weights)
        for v in self.adj:
            clone.adj[v] = set(self.adj[v])
        return clone

    def connected_components(self) -> list[set[Vertex]]:
        """Vertex sets of the connected components (BFS)."""
        unseen = set(self.adj)
        components = []
        while unseen:
            start = next(iter(unseen))
            component = {start}
            frontier = [start]
            unseen.remove(start)
            while frontier:
                v = frontier.pop()
                for u in self.adj[v]:
                    if u in unseen:
                        unseen.remove(u)
                        component.add(u)
                        frontier.append(u)
            components.append(component)
        return components

    def is_independent_set(self, selected: Iterable[Vertex]) -> bool:
        chosen = set(selected)
        return all(not (self.adj[v] & chosen) for v in chosen)

    def weight_of(self, selected: Iterable[Vertex]) -> float:
        return sum(self.weights[v] for v in selected)
