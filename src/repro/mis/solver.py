"""Solver façade: route a conflict structure to the right MIS engine.

Conflict graphs (2-edges only, the Exact variant) go to the exact MWIS
branch-and-bound; hypergraphs with 3-edges go to the component-partitioned
hypergraph solver. Either path degrades gracefully to the greedy heuristic
when the node budget runs out, and ``exact=False`` forces the heuristic
(the paper's ablation of the MIS engine inside CTCR).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mis.cache import MISComponentCache, get_mis_cache
from repro.mis.exact import BudgetExceededError, solve_exact
from repro.mis.graph import WeightedGraph
from repro.mis.greedy import solve_greedy
from repro.mis.hypergraph_mis import (
    WeightedHypergraph,
    solve_hypergraph_mis,
)
from repro.observability import get_tracer

Vertex = int


@dataclass(frozen=True)
class MISConfig:
    """Tuning knobs for the MIS stage of CTCR.

    ``n_jobs`` fans independent conflict components out to a process
    pool on the hypergraph path; ``use_cache`` replays components
    already solved in this process (threshold sweeps re-solve
    near-identical structures per δ). Neither changes results: all
    combinations return byte-identical selections.

    The two engines budget differently: ``node_budget`` is the graph
    path's *shared* allowance across the whole instance, while
    ``hyper_node_budget`` is *per connected component* on the
    hypergraph path (required for serial/pooled parity) — and much
    smaller, because the blocked-mask bound makes each node count.
    """

    exact: bool = True
    node_budget: int = 500_000
    hyper_node_budget: int = 50_000
    n_jobs: int = 1
    use_cache: bool = False

    def describe(self) -> str:
        return "exact" if self.exact else "greedy"


def _to_graph(hg: WeightedHypergraph) -> WeightedGraph:
    graph = WeightedGraph(hg.vertices, hg.weights)
    for edge in hg.edges:
        if len(edge) != 2:
            raise ValueError(
                "conflict graph path requires 2-edges only; got hyperedge "
                f"{sorted(edge, key=repr)} of size {len(edge)}"
            )
        a, b = tuple(edge)
        graph.add_edge(a, b)
    return graph


def solve_conflicts(
    hg: WeightedHypergraph,
    config: MISConfig | None = None,
    cache: "MISComponentCache | None" = None,
) -> set[Vertex]:
    """Maximum-weight conflict-free subset of input-set ids.

    ``cache`` overrides the process-global component cache on the
    hypergraph path — the incremental builder passes a snapshot-scoped,
    payload-keeping cache here so solved components persist across
    builds instead of across sweeps.
    """
    config = config or MISConfig()
    tracer = get_tracer()
    with tracer.span("mis.solve"):
        has_triples = any(len(edge) == 3 for edge in hg.edges)
        if has_triples:
            if cache is None and config.use_cache:
                cache = get_mis_cache()
            return solve_hypergraph_mis(
                hg,
                node_budget=config.hyper_node_budget,
                exact=config.exact,
                n_jobs=config.n_jobs,
                cache=cache,
            )
        graph = _to_graph(hg)
        if config.exact:
            try:
                return solve_exact(graph, node_budget=config.node_budget)
            except BudgetExceededError:
                tracer.count("mis.greedy_fallbacks")
        return solve_greedy(graph)
