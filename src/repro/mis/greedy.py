"""Greedy + local-search heuristic for maximum-weight independent set.

Used as the fallback when branch-and-bound exceeds its node budget, and
as an ablation inside CTCR (exact vs heuristic MIS). The construction is
the classic ``w(v)/(deg(v)+1)`` greedy; the improvement phase applies
add-moves and (1,2)-swaps (remove one chosen vertex, insert two of its
neighbours) until a fixed point or the iteration cap.
"""

from __future__ import annotations

from repro.mis.graph import Vertex, WeightedGraph


def greedy_mwis(graph: WeightedGraph) -> set[Vertex]:
    """Greedy construction: repeatedly take the best weight/degree vertex."""
    alive = set(graph.vertices())
    chosen: set[Vertex] = set()
    order = sorted(
        alive,
        key=lambda v: (-graph.weights[v] / (len(graph.adj[v]) + 1), str(v)),
    )
    blocked: set[Vertex] = set()
    for v in order:
        if v in blocked:
            continue
        chosen.add(v)
        blocked |= graph.adj[v]
        blocked.add(v)
    return chosen


def _try_add_moves(graph: WeightedGraph, chosen: set[Vertex]) -> bool:
    improved = False
    for v in graph.vertices():
        if v in chosen or graph.weights[v] <= 0:
            continue
        if not (graph.adj[v] & chosen):
            chosen.add(v)
            improved = True
    return improved


def _try_swap_moves(graph: WeightedGraph, chosen: set[Vertex]) -> bool:
    """(1,k)-swaps: drop one chosen vertex for heavier free neighbours.

    The replacement set is built greedily by weight among the dropped
    vertex's neighbours that have no other chosen neighbour.
    """
    for v in list(chosen):
        candidates = [
            u
            for u in graph.adj[v]
            if graph.weights[u] > 0 and not (graph.adj[u] & (chosen - {v}))
        ]
        candidates.sort(key=lambda u: (-graph.weights[u], str(u)))
        replacement: list[Vertex] = []
        for u in candidates:
            if not any(u in graph.adj[w] for w in replacement):
                replacement.append(u)
        gain = sum(graph.weights[u] for u in replacement) - graph.weights[v]
        if gain > 1e-12:
            chosen.remove(v)
            chosen.update(replacement)
            return True
    return False


def local_search(
    graph: WeightedGraph, chosen: set[Vertex], max_rounds: int = 50
) -> set[Vertex]:
    """Improve an independent set until no add/(1,2)-swap move applies."""
    chosen = set(chosen)
    for _ in range(max_rounds):
        added = _try_add_moves(graph, chosen)
        swapped = _try_swap_moves(graph, chosen)
        if not added and not swapped:
            break
    return chosen


def solve_greedy(graph: WeightedGraph, max_rounds: int = 50) -> set[Vertex]:
    """Greedy construction followed by local search."""
    return local_search(graph, greedy_mwis(graph), max_rounds=max_rounds)


def iterated_local_search(
    graph: WeightedGraph,
    iterations: int = 30,
    perturbation: float = 0.25,
    seed: int = 0,
) -> set[Vertex]:
    """Iterated local search: perturb, re-optimize, keep the best.

    Each round evicts a random fraction of the incumbent (plus their
    blocking effect) and lets the local search rebuild — the standard
    plateau-escape scheme of practical MIS heuristics. Deterministic for
    a fixed seed.
    """
    from repro.utils.rng import make_rng

    rng = make_rng(seed)
    best = solve_greedy(graph)
    best_weight = graph.weight_of(best)
    current = set(best)
    for _ in range(iterations):
        if current:
            k = max(1, int(len(current) * perturbation))
            evicted = set(rng.sample(sorted(current, key=str), k))
            current -= evicted
        current = local_search(graph, current)
        weight = graph.weight_of(current)
        if weight > best_weight + 1e-12:
            best, best_weight = set(current), weight
        else:
            current = set(best)
    return best
