"""Zero-dependency structured tracing: nested spans, counters, gauges.

One :class:`Tracer` collects everything a run wants to report: *spans*
(nested wall/CPU timings aggregated by path, so a stage that runs inside
``ctcr.build`` shows up as ``ctcr.build/ctcr.pairwise``), integer
*counters* (pairs enumerated, MIS nodes expanded, bitset words touched),
float *gauges* (last-write-wins measurements such as diagnostics), and
free-form *annotations* (JSON-serializable metadata like a dataset
fingerprint).

The layer is strictly pay-for-what-you-use.  The module-level active
tracer defaults to :data:`NULL_TRACER`, whose methods are no-ops that
allocate nothing — instrumented hot paths cost one attribute lookup and
one call per event when tracing is off (pinned by the overhead
regression test).  Enable tracing for a region with :func:`use_tracer`::

    with use_tracer(Tracer()) as tracer:
        tree = CTCR().build(instance, variant)
    print(tracer.format_tree())

Spans survive exceptions: a span body that raises still closes, records
its elapsed time, and increments the span's ``errors`` count.  Process
pools are handled by :mod:`repro.utils.parallel`, which installs a fresh
tracer in each worker and merges worker counter deltas back into the
parent tracer (worker-local spans are intentionally not merged — wall
time of parallel stages is attributed to the parent's enclosing span).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

SEP = "/"  # joins nested span names into an aggregation path


@dataclass
class SpanStats:
    """Aggregate of every execution of one span path."""

    path: str
    name: str
    depth: int
    calls: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    errors: int = 0

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "name": self.name,
            "depth": self.depth,
            "calls": self.calls,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "errors": self.errors,
        }


class _Span:
    """Reentrant-per-instance context manager recording one span run."""

    __slots__ = ("_tracer", "_name", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        self._tracer._push(self._name)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self._tracer._pop(self._name, wall, cpu, error=exc_type is not None)
        return False  # never swallow the exception


class Tracer:
    """An enabled collector of spans, counters, gauges, and annotations."""

    enabled = True

    def __init__(self) -> None:
        self._stack: list[str] = []
        self.spans: dict[str, SpanStats] = {}  # path -> stats, insertion-ordered
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.annotations: dict[str, object] = {}

    # -- spans -------------------------------------------------------------

    def span(self, name: str) -> _Span:
        """Context manager timing one named, possibly nested, region."""
        return _Span(self, name)

    def _push(self, name: str) -> None:
        self._stack.append(name)
        # Register at entry so the span table lists parents before
        # children and siblings in execution order.
        path = SEP.join(self._stack)
        if path not in self.spans:
            self.spans[path] = SpanStats(
                path=path, name=name, depth=len(self._stack) - 1
            )

    def _pop(self, name: str, wall: float, cpu: float, error: bool) -> None:
        path = SEP.join(self._stack)
        self._stack.pop()
        stats = self.spans[path]
        stats.calls += 1
        stats.wall_s += wall
        stats.cpu_s += cpu
        if error:
            stats.errors += 1

    @property
    def current_path(self) -> str:
        """Dotted path of the innermost open span ('' at top level)."""
        return SEP.join(self._stack)

    # -- counters / gauges / annotations -----------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to an integer counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time measurement (last write wins)."""
        self.gauges[name] = float(value)

    def annotate(self, key: str, value: object) -> None:
        """Attach arbitrary JSON-serializable metadata to the run."""
        self.annotations[key] = value

    def merge_counters(self, delta: dict[str, int]) -> None:
        """Fold a worker's counter deltas into this tracer."""
        for name, n in delta.items():
            self.count(name, n)

    # -- reporting ---------------------------------------------------------

    def format_tree(self) -> str:
        """Human-readable span tree with wall/CPU totals and counters."""
        lines = ["spans (wall_s  cpu_s  calls):"]
        for stats in self.spans.values():
            lines.append(
                f"  {'  ' * stats.depth}{stats.name:<28s}"
                f" {stats.wall_s:9.4f} {stats.cpu_s:9.4f} {stats.calls:6d}"
                + (f"  errors={stats.errors}" if stats.errors else "")
            )
        if len(lines) == 1:
            lines.append("  (none)")
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name} = {self.counters[name]}")
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append(f"  {name} = {self.gauges[name]:g}")
        return "\n".join(lines)


class _NullSpan:
    """Shared, stateless no-op span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

_EMPTY: dict = {}


class NullTracer:
    """Disabled tracer: every operation is a constant-time no-op.

    Shares the read-only surface of :class:`Tracer` (``spans``,
    ``counters``, ``gauges``, ``annotations`` are permanently empty) so
    instrumentation sites never need an ``if tracing:`` branch.
    """

    enabled = False
    spans = _EMPTY
    counters = _EMPTY
    gauges = _EMPTY
    annotations = _EMPTY
    current_path = ""

    __slots__ = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def annotate(self, key: str, value: object) -> None:
        pass

    def merge_counters(self, delta: dict[str, int]) -> None:
        pass

    def format_tree(self) -> str:
        return "tracing disabled"


NULL_TRACER = NullTracer()

_ACTIVE: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide active tracer (the null tracer by default)."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer (``None`` disables)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return _ACTIVE


@contextmanager
def use_tracer(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scope a tracer: activate it, yield it, restore the previous one."""
    active = tracer if tracer is not None else Tracer()
    previous = _ACTIVE
    set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
