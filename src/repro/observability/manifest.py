"""Run manifests: one JSON document describing one pipeline run.

A :class:`RunManifest` is the machine-readable record the benchmarks and
the CLI emit next to their human-readable output: which code ran (tool,
config, variant), on what (dataset fingerprint, seed), how long each
stage took (the tracer's span aggregates), what the counters saw, the
process's peak RSS, and the final score.  The schema is versioned and
pinned by a golden-file test; bump :data:`SCHEMA_VERSION` whenever a
field is added, renamed, or changes meaning.

Reading a manifest: sort ``spans`` by ``wall_s`` and the dominant stage
is at the top; ``counters`` explain *why* (e.g. a large
``conflicts.pairs_enumerated`` with few ``conflicts.two_conflicts``
means the pairwise stage is enumeration-bound, not classification-bound).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.observability.tracer import NullTracer, Tracer

# v2: ctcr.diag.mis_cache_{hits,misses} gauges and the mis.cache_* /
# mis.kernel_removed counters from the kernelized MIS engine.
# v3: cct.cache_{hits,misses} counters from CCT's embedding cache.
# v4: incremental.* gauges/counters from delta rebuilds (dirty pairs,
# reused/resolved MIS components, staging hits, delta vs full wall).
# v5: serving.workers.* gauges/counters from multi-process serving
# (worker count, respawns, poll errors) and serving.flat_bytes from the
# flat mmap snapshot compiler.
# v6: serving.succinct.* counters from the succinct read path (requests
# served by succinct generations, varint postings decoded, bitset
# large-fan-in fallbacks, batched-LCA sweeps).
# v7: serving.querycat.* counters from free-text query categorization
# (per-stage outcomes exact/overlap/backoff/nohit/empty, unmatched,
# backoff_steps, per-category traffic.<cid> / backoff_traffic.<cid>) —
# the raw material of the repro.analytics report and drift detector.
# v8: shaping.* counters/gauges from latency/memory-budgeted tree
# shaping (runs, removed, hub_splits, width_pruned, quality_given_up,
# met) emitted by repro.shaping.TreeShaper and the HotSwapper
# shape-then-publish path.
SCHEMA_VERSION = 8

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int | None:
    """This process's peak resident set size, or None if unavailable."""
    if resource is None:  # pragma: no cover
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes; normalize to bytes.
    return peak * 1024 if os.uname().sysname == "Linux" else peak


def make_run_id(prefix: str = "run") -> str:
    """A filesystem-safe, human-sortable run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime())
    return f"{prefix}-{stamp}-p{os.getpid()}"


def instance_fingerprint(instance) -> dict:
    """A stable content fingerprint of an :class:`OCTInstance`.

    Size fields identify the shape at a glance; the digest pins the
    exact content (sids, items, weights, thresholds, bounds), so two
    manifests with equal fingerprints ran on identical inputs.
    """
    digest = hashlib.sha256()
    for q in sorted(instance.sets, key=lambda q: q.sid):
        digest.update(
            repr(
                (q.sid, sorted(map(str, q.items)), q.weight, q.threshold)
            ).encode()
        )
    universe = sorted(map(str, instance.universe))
    digest.update(repr(universe).encode())
    digest.update(
        repr(sorted((str(i), instance.bound(i)) for i in instance.universe)).encode()
    )
    return {
        "n_sets": len(instance.sets),
        "n_items": len(instance.universe),
        "total_weight": sum(q.weight for q in instance.sets),
        "sha256": digest.hexdigest(),
    }


@dataclass
class RunManifest:
    """Everything one run wants to report, as one JSON document."""

    run_id: str
    tool: str
    created_at: str
    schema_version: int = SCHEMA_VERSION
    config: dict = field(default_factory=dict)
    dataset: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    annotations: dict = field(default_factory=dict)
    totals: dict = field(default_factory=dict)
    score: dict = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        tracer: Tracer | NullTracer,
        run_id: str | None = None,
        tool: str = "repro",
        config: Mapping | None = None,
        dataset: Mapping | None = None,
        score: Mapping | None = None,
    ) -> "RunManifest":
        """Snapshot a tracer (plus run metadata) into a manifest.

        ``dataset`` and ``score`` default to the tracer's
        ``dataset.fingerprint`` / ``score`` annotations when present (the
        CLI records both while running).
        """
        annotations = dict(tracer.annotations)
        if dataset is None:
            dataset = annotations.pop("dataset.fingerprint", {})
        if score is None:
            score = annotations.pop("score", {})
        spans = [s.to_dict() for s in tracer.spans.values()]
        totals = {
            "wall_s": sum(s["wall_s"] for s in spans if s["depth"] == 0),
            "cpu_s": sum(s["cpu_s"] for s in spans if s["depth"] == 0),
            "peak_rss_bytes": peak_rss_bytes(),
        }
        return cls(
            run_id=run_id or make_run_id(),
            tool=tool,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime()),
            config=dict(config or {}),
            dataset=dict(dataset),
            spans=spans,
            counters=dict(tracer.counters),
            gauges=dict(tracer.gauges),
            annotations=annotations,
            totals=totals,
            score=dict(score or {}),
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "tool": self.tool,
            "created_at": self.created_at,
            "config": self.config,
            "dataset": self.dataset,
            "totals": self.totals,
            "score": self.score,
            "spans": self.spans,
            "counters": self.counters,
            "gauges": self.gauges,
            "annotations": self.annotations,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunManifest":
        known = {
            "run_id", "tool", "created_at", "schema_version", "config",
            "dataset", "spans", "counters", "gauges", "annotations",
            "totals", "score",
        }
        return cls(**{k: v for k, v in data.items() if k in known})

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as f:
            return cls.from_dict(json.load(f))

    # -- reading -----------------------------------------------------------

    def dominant_spans(self, top: int = 5) -> list:
        """Span dicts sorted by wall time, heaviest first."""
        return sorted(self.spans, key=lambda s: -s["wall_s"])[:top]
