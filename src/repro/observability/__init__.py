"""Observability: structured tracing, counters, and run manifests.

Zero-dependency (stdlib only).  The active tracer defaults to a no-op
:data:`NULL_TRACER`; enable collection with :func:`use_tracer` and
snapshot a run into a :class:`RunManifest` for the machine-readable
record.  See docs/operations.md for the operator guide.
"""

from repro.observability.manifest import (
    RunManifest,
    SCHEMA_VERSION,
    instance_fingerprint,
    make_run_id,
    peak_rss_bytes,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanStats,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "RunManifest",
    "SCHEMA_VERSION",
    "SpanStats",
    "Tracer",
    "get_tracer",
    "instance_fingerprint",
    "make_run_id",
    "peak_rss_bytes",
    "set_tracer",
    "use_tracer",
]
