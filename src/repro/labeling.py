"""Category labeling support (paper Section 2.3, "Labeling").

Naming categories is outside the paper's formal scope, but the system
marks each category with the input sets it matches, and their labels
(a search query or an existing-category name) naturally hint at a name;
when a category matches several sets, the precision requirement ensures
a large overlap, so the labels agree. Taxonomists in the user study
found labeling the CTCR tree straightforward on this basis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.input_sets import OCTInstance
from repro.core.scoring import covering_categories
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.search.analyzer import tokenize


@dataclass(frozen=True)
class LabelSuggestion:
    """A naming hint for one category."""

    cid: int
    suggestion: str
    matched_labels: tuple[str, ...]
    confidence: float  # weight share of the winning label


def _common_tokens(labels: list[str]) -> list[str]:
    nonempty = [label for label in labels if label]
    if not nonempty:
        return []
    token_sets = [set(tokenize(label)) for label in nonempty]
    common = set.intersection(*token_sets)
    # Preserve the token order of the first (non-empty) label.
    return [t for t in tokenize(nonempty[0]) if t in common]


def suggest_labels(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> list[LabelSuggestion]:
    """Naming hints for every covering category.

    The winning suggestion is the heaviest matched set's label; when
    several sets match, the tokens shared by all matched labels are
    preferred if any exist (e.g. "black shirt" + "black adidas shirt"
    suggests "black shirt"-area naming with explicit alternatives).
    """
    suggestions = []
    for cid, sids in covering_categories(tree, instance, variant).items():
        matched = [instance.get(sid) for sid in sids]
        matched.sort(key=lambda q: -q.weight)
        labels = [q.label for q in matched if q.label]
        if not labels:
            continue
        total_weight = sum(q.weight for q in matched)
        winner = labels[0]
        if len(labels) > 1:
            common = _common_tokens(labels)
            if common:
                winner = " ".join(common)
        confidence = (
            matched[0].weight / total_weight if total_weight > 0 else 0.0
        )
        suggestions.append(
            LabelSuggestion(
                cid=cid,
                suggestion=winner,
                matched_labels=tuple(labels),
                confidence=confidence,
            )
        )
    return suggestions


def apply_label_suggestions(
    tree: CategoryTree, suggestions: list[LabelSuggestion]
) -> int:
    """Stamp suggestions onto unlabeled categories; returns how many."""
    by_cid = {cat.cid: cat for cat in tree.categories()}
    applied = 0
    for s in suggestions:
        cat = by_cid.get(s.cid)
        if cat is not None and not cat.label:
            cat.label = s.suggestion
            applied += 1
    return applied
