"""Shared machinery for the item-clustering baselines (IC-S, IC-Q).

Both baselines cluster *items* directly (unlike CCT, which clusters the
input sets): a dendrogram over item groups becomes the category tree,
each item sitting in exactly one leaf — automatically satisfying the
branch bound. Large catalogs are handled by (a) exact compression of
identical signatures and (b) nearest-seed reduction when the group count
still exceeds ``max_leaves``.
"""

from __future__ import annotations

import random
from typing import Hashable

import numpy as np

from repro.clustering.agglomerative import agglomerative_clustering
from repro.clustering.dendrogram import Dendrogram
from repro.core.tree import CategoryTree

Item = Hashable


def reduce_groups(
    vectors: np.ndarray,
    members: list[list[Item]],
    max_leaves: int,
    rng: random.Random,
) -> tuple[np.ndarray, list[list[Item]]]:
    """Cap the number of groups by folding each into its nearest seed.

    Seeds are a random sample of the existing groups; every other group
    joins the seed with the highest dot-product similarity (rows should
    be L2-normalized or binary). The reduction is only applied when
    needed.
    """
    n = len(members)
    if n <= max_leaves:
        return vectors, members
    seed_rows = sorted(rng.sample(range(n), max_leaves))
    seeds = vectors[seed_rows]
    sims = vectors @ seeds.T
    nearest = np.argmax(sims, axis=1)
    merged: list[list[Item]] = [[] for _ in seed_rows]
    for row in range(n):
        merged[int(nearest[row])].extend(members[row])
    keep = [i for i, m in enumerate(merged) if m]
    return seeds[keep], [sorted(merged[i], key=str) for i in keep]


def tree_from_item_dendrogram(
    dendrogram: Dendrogram,
    members: list[list[Item]],
    min_category_size: int = 2,
) -> CategoryTree:
    """Materialize an item dendrogram as a category tree.

    Subtrees holding fewer than ``min_category_size`` items collapse into
    a single category, keeping the tree at a realistic granularity
    instead of one singleton leaf per item.
    """
    tree = CategoryTree()
    child_map = dendrogram.children()

    def items_under(node_id: int) -> list[Item]:
        collected: list[Item] = []
        stack = [node_id]
        while stack:
            node = stack.pop()
            if node < dendrogram.n_leaves:
                collected.extend(members[node])
            else:
                stack.extend(child_map[node])
        return collected

    stack = [(dendrogram.root_id, tree.root)]
    while stack:
        node_id, parent = stack.pop()
        node_items = items_under(node_id)
        is_leaf = node_id < dendrogram.n_leaves
        if is_leaf or len(node_items) < 2 * min_category_size:
            tree.add_category(node_items, parent=parent)
            continue
        if node_id == dendrogram.root_id and parent is tree.root:
            cat = tree.root
        else:
            cat = tree.add_category((), parent=parent)
        for child in child_map[node_id]:
            stack.append((child, cat))
    return tree


def cluster_groups(
    vectors: np.ndarray,
    members: list[list[Item]],
    linkage: str = "average",
    metric: str = "euclidean",
) -> tuple[Dendrogram, list[list[Item]]]:
    """Agglomerative clustering over group vectors."""
    dendrogram = agglomerative_clustering(vectors, linkage=linkage, metric=metric)
    return dendrogram, members
