"""ET baseline: the existing (manually built) category tree.

Represents the approach currently taken by e-commerce platforms — the
tree taxonomists maintain by hand, generated here by
:mod:`repro.catalog.taxonomy`. ``build`` returns a copy of the wrapped
tree so the evaluation cannot mutate the shared original, with items the
instance knows but the tree lacks gathered into a misc category.
"""

from __future__ import annotations

from repro.algorithms.base import TreeBuilder
from repro.algorithms.condense import add_misc_category
from repro.core.input_sets import OCTInstance
from repro.core.tree import CategoryTree
from repro.core.variants import Variant


class ExistingTree(TreeBuilder):
    """Wraps a pre-built tree as a (constant) baseline builder."""

    name = "ET"

    def __init__(self, tree: CategoryTree) -> None:
        self.tree = tree

    def build(self, instance: OCTInstance, variant: Variant) -> CategoryTree:
        clone = self.tree.copy()
        add_misc_category(clone, instance)
        return clone
