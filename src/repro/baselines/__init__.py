"""Baseline tree builders: IC-S, IC-Q, and the existing tree (ET)."""

from repro.baselines.existing import ExistingTree
from repro.baselines.ic_q import ICQ, ICQConfig
from repro.baselines.ic_s import ICS, ICSConfig
from repro.baselines.item_clustering import (
    reduce_groups,
    tree_from_item_dendrogram,
)

__all__ = [
    "ExistingTree",
    "ICQ",
    "ICQConfig",
    "ICS",
    "ICSConfig",
    "reduce_groups",
    "tree_from_item_dendrogram",
]
