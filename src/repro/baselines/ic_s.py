"""IC-S baseline: semantic item clustering (paper Section 5.2).

An adaptation of Hsieh et al.'s e-commerce categorization: embed product
titles and run hierarchical clustering over the item embeddings. Unlike
CCT it clusters items directly and ignores the input sets entirely,
relying only on item metadata — which is exactly why the paper uses it
as the semantic strawman. The proprietary domain-trained embedding model
is replaced by hashed TF-IDF title embeddings (see
:mod:`repro.embeddings.text`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.algorithms.base import TreeBuilder
from repro.algorithms.condense import add_misc_category
from repro.baselines.item_clustering import (
    reduce_groups,
    tree_from_item_dendrogram,
)
from repro.clustering.agglomerative import agglomerative_clustering
from repro.core.input_sets import OCTInstance
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.embeddings.text import title_embeddings
from repro.utils.rng import make_rng

Item = Hashable


@dataclass(frozen=True)
class ICSConfig:
    """Knobs for the IC-S baseline."""

    embedding_dim: int = 64
    max_leaves: int = 1000
    min_category_size: int = 3
    linkage: str = "average"
    seed: int = 0


class ICS(TreeBuilder):
    """Title-embedding item clustering."""

    name = "IC-S"

    def __init__(
        self, titles: dict[Item, str], config: ICSConfig | None = None
    ) -> None:
        self.titles = titles
        self.config = config or ICSConfig()

    def build(self, instance: OCTInstance, variant: Variant) -> CategoryTree:
        items = sorted(instance.universe, key=str)
        if not items:
            return CategoryTree()
        rng = make_rng(self.config.seed)
        # Exact compression: identical titles are interchangeable.
        by_title: dict[str, list[Item]] = {}
        for item in items:
            by_title.setdefault(self.titles.get(item, ""), []).append(item)
        title_list = sorted(by_title)
        members = [by_title[t] for t in title_list]
        vectors = title_embeddings(title_list, dim=self.config.embedding_dim)
        vectors, members = reduce_groups(
            vectors, members, self.config.max_leaves, rng
        )
        if len(members) == 1:
            tree = CategoryTree()
            tree.add_category(members[0], parent=tree.root)
            add_misc_category(tree, instance)
            return tree
        dendrogram = agglomerative_clustering(
            np.asarray(vectors), linkage=self.config.linkage, metric="cosine"
        )
        tree = tree_from_item_dendrogram(
            dendrogram, members, self.config.min_category_size
        )
        add_misc_category(tree, instance)
        return tree
