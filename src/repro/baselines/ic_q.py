"""IC-Q baseline: membership-vector item clustering (paper Section 5.2).

A hybrid between CCT and IC-S: items are clustered directly (like IC-S)
but their representation is the binary vector of input sets containing
them (like CCT's input signal). Items with identical membership are
compressed into one signature group first — an exact reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import TreeBuilder
from repro.algorithms.condense import add_misc_category
from repro.baselines.item_clustering import (
    reduce_groups,
    tree_from_item_dendrogram,
)
from repro.clustering.agglomerative import agglomerative_clustering
from repro.core.input_sets import OCTInstance
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.embeddings.membership import membership_groups, signature_vectors
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class ICQConfig:
    """Knobs for the IC-Q baseline."""

    max_leaves: int = 1000
    min_category_size: int = 3
    linkage: str = "average"
    seed: int = 0


class ICQ(TreeBuilder):
    """Set-membership item clustering."""

    name = "IC-Q"

    def __init__(self, config: ICQConfig | None = None) -> None:
        self.config = config or ICQConfig()

    def build(self, instance: OCTInstance, variant: Variant) -> CategoryTree:
        if not instance.universe:
            return CategoryTree()
        rng = make_rng(self.config.seed)
        groups = membership_groups(instance)
        vectors = signature_vectors(groups, instance)
        vectors, members = reduce_groups(
            vectors, groups.members, self.config.max_leaves, rng
        )
        if len(members) == 1:
            tree = CategoryTree()
            tree.add_category(members[0], parent=tree.root)
            add_misc_category(tree, instance)
            return tree
        dendrogram = agglomerative_clustering(
            vectors, linkage=self.config.linkage, metric="euclidean"
        )
        tree = tree_from_item_dendrogram(
            dendrogram, members, self.config.min_category_size
        )
        add_misc_category(tree, instance)
        return tree
