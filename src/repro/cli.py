"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build``     — build a tree for a synthetic dataset (or an instance
                  JSON) with a chosen algorithm/variant; optionally save
                  the tree as JSON.
* ``evaluate``  — score a saved tree against an instance.
* ``compare``   — run all five algorithms and print the score table.
* ``sweep``     — CTCR threshold sweep for one variant family.
* ``preprocess`` — run the Section 5.1 pipeline on a synthetic dataset
                  and export the resulting OCT instance as JSON.
* ``trends``    — report trending and fading queries in a dataset's log.
* ``serve``     — run the snapshot-based HTTP serving layer (build or
                  load a snapshot, answer categorize/browse/search
                  queries, hot-swap on demand).
* ``inspect-snapshot`` — print the flat binary snapshot's section table
                  (name, kind, count, bytes, % of total) per shard, with
                  per-group subtotals comparing the dense and succinct
                  layouts.
* ``categorize-query`` — map free-text queries onto the tree via the
                  staged decision procedure (exact label hit, token
                  overlap, confidence-thresholded back-off).
* ``analytics`` — offline serving analytics over run manifests: the
                  category-performance report (traffic share, coverage,
                  penetration) and the traffic-drift detector with its
                  rebuild recommendation.
* ``oct``       — alias for ``build`` (the paper's name for the problem).

Variants are spelled ``threshold-jaccard:0.8``, ``cutoff-f1:0.7``,
``perfect-recall:0.6``, or ``exact``.

Every command accepts the observability flags ``--trace`` (print the
span/counter tree after the run), ``--manifest PATH`` (write the
machine-readable run manifest JSON) and ``--profile PATH`` (dump
cProfile stats); see docs/operations.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.algorithms import CCT, CCTConfig, CTCR, CTCRConfig
from repro.algorithms.base import TreeBuilder
from repro.baselines import ExistingTree, ICQ, ICS
from repro.catalog import DATASET_SPECS, load_dataset
from repro.core import Variant, score_tree
from repro.evaluation import (
    delta_range,
    format_table,
    run_comparison,
    threshold_sweep,
)
from repro.catalog.trends import detect_trending_queries, fading_queries
from repro.io import dump_instance, dump_tree, load_instance, load_tree
from repro.mis.solver import MISConfig
from repro.observability import (
    RunManifest,
    Tracer,
    get_tracer,
    instance_fingerprint,
    use_tracer,
)
from repro.pipeline import preprocess


def parse_variant(spec: str) -> Variant:
    """Parse ``kind:delta`` variant specs (``exact`` has no delta)."""
    if spec == "exact":
        return Variant.exact()
    try:
        name, raw_delta = spec.split(":")
        delta = float(raw_delta)
    except ValueError as exc:
        raise SystemExit(
            f"bad variant {spec!r}; expected e.g. threshold-jaccard:0.8"
        ) from exc
    constructors = {
        "threshold-jaccard": Variant.threshold_jaccard,
        "cutoff-jaccard": Variant.cutoff_jaccard,
        "threshold-f1": Variant.threshold_f1,
        "cutoff-f1": Variant.cutoff_f1,
        "perfect-recall": Variant.perfect_recall,
    }
    if name not in constructors:
        raise SystemExit(
            f"unknown variant kind {name!r}; one of {sorted(constructors)}"
        )
    return constructors[name](delta)


def _load(args) -> tuple:
    """Resolve (instance, dataset-or-None) from CLI arguments."""
    variant = parse_variant(args.variant)
    if args.instance:
        instance, dataset = load_instance(args.instance), None
    else:
        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        instance, _report = preprocess(dataset, variant)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.annotate("dataset.fingerprint", instance_fingerprint(instance))
    return instance, dataset, variant


def _jobs_arg(raw: str) -> int:
    """Validate --jobs up front so both engines reject it identically."""
    value = int(raw)
    if value != -1 and value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1, or -1 for all CPUs (got {value})"
        )
    return value


def _ctcr_config(args) -> CTCRConfig:
    """CTCR tuning from the common CLI flags (--jobs, --bitset, --mis-*)."""
    use_bitset = {"auto": None, "on": True, "off": False}[
        getattr(args, "bitset", "auto")
    ]
    mis = MISConfig(
        n_jobs=getattr(args, "mis_jobs", 1),
        use_cache=getattr(args, "mis_cache", "on") == "on",
    )
    return CTCRConfig(
        mis=mis, n_jobs=getattr(args, "jobs", 1), use_bitset=use_bitset
    )


def _cct_config(args) -> CCTConfig:
    """CCT tuning from the common CLI flags (--jobs, --bitset, --cct-*)."""
    use_bitset = {"auto": None, "on": True, "off": False}[
        getattr(args, "bitset", "auto")
    ]
    return CCTConfig(
        n_jobs=getattr(args, "jobs", 1),
        use_bitset=use_bitset,
        use_cache=getattr(args, "cct_cache", "on") == "on",
        cluster_engine=getattr(args, "cct_cluster", "nn-chain"),
    )


def _builder(name: str, dataset, args=None) -> TreeBuilder:
    if name == "ctcr":
        return CTCR(_ctcr_config(args) if args is not None else None)
    if name == "cct":
        return CCT(_cct_config(args) if args is not None else None)
    if dataset is None:
        raise SystemExit(f"algorithm {name!r} needs a synthetic dataset")
    if name == "ic-s":
        return ICS(dataset.titles)
    if name == "ic-q":
        return ICQ()
    if name == "et":
        return ExistingTree(dataset.existing_tree)
    raise SystemExit(f"unknown algorithm {name!r}")


def _build_delta(args, instance, variant):
    """The ``--delta-from`` build path: reuse the store's carried state.

    Returns ``(tree, counters)``; ``counters`` is empty when the build
    fell back to (or bootstrapped with) a full build. The new snapshot
    and its build-state sidecar are saved into the store either way, so
    the next ``--delta-from`` run starts from this build.
    """
    from repro.incremental import (
        DeltaMismatchError,
        IncrementalBuilder,
        IncrementalStateStore,
    )
    from repro.serving import SnapshotStore

    store = SnapshotStore(args.delta_from)
    states = IncrementalStateStore(store.root)
    builder = IncrementalBuilder(_ctcr_config(args))
    current = store.current_id()
    state = states.load(current) if current else None
    counters: dict = {}
    if state is None:
        tree, new_state = builder.full_build(instance, variant)
        print(
            "no reusable state in store; ran a full build "
            f"({new_state.full_build_wall_s:.2f}s)"
        )
    else:
        try:
            result = builder.delta_build(state, instance, variant)
            tree, new_state, counters = (
                result.tree, result.state, result.counters,
            )
        except DeltaMismatchError as exc:
            get_tracer().count("incremental.fallbacks")
            print(f"delta state mismatch ({exc}); falling back to full build")
            tree, new_state = builder.full_build(instance, variant)
    info = store.save(tree, instance, variant)
    states.save(info.snapshot_id, new_state)
    print(f"snapshot {info.snapshot_id} saved to {store.root}")
    if counters:
        print(
            "delta build: "
            f"pairs reused/reclassified/added = "
            f"{counters['incremental.pairs_reused']:.0f}/"
            f"{counters['incremental.pairs_reclassified']:.0f}/"
            f"{counters['incremental.pairs_added']:.0f}, "
            f"components reused/resolved = "
            f"{counters['incremental.components_reused']:.0f}/"
            f"{counters['incremental.components_resolved']:.0f}, "
            f"wall {counters['incremental.delta_wall_s']:.2f}s "
            f"(last full build {counters['incremental.est_full_wall_s']:.2f}s)"
        )
    return tree


def cmd_build(args) -> int:
    instance, dataset, variant = _load(args)
    if getattr(args, "delta_from", None):
        if args.algorithm != "ctcr":
            raise SystemExit("--delta-from requires --algorithm ctcr")
        builder = _builder(args.algorithm, dataset, args)
        tree = _build_delta(args, instance, variant)
    else:
        builder = _builder(args.algorithm, dataset, args)
        tree = builder.build(instance, variant)
    tree.validate(universe=instance.universe, bound=instance.bound)
    report = score_tree(tree, instance, variant)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.annotate(
            "score",
            {
                "algorithm": builder.name,
                "normalized": report.normalized,
                "total": report.total,
                "covered": report.covered_count,
                "categories": len(tree),
            },
        )
    print(
        f"{builder.name}: score={report.normalized:.4f} "
        f"covered={report.covered_count}/{len(instance)} "
        f"categories={len(tree)}"
    )
    if args.output:
        dump_tree(tree, args.output)
        print(f"tree written to {args.output}")
    if args.show:
        print(tree.to_text())
    return 0


def cmd_evaluate(args) -> int:
    instance, _dataset, variant = _load(args)
    tree = load_tree(args.tree)
    report = score_tree(tree, instance, variant)
    print(
        f"score={report.normalized:.4f} "
        f"covered={report.covered_count}/{len(instance)}"
    )
    return 0


def cmd_compare(args) -> int:
    instance, dataset, variant = _load(args)
    names = ["ctcr", "cct", "ic-q", "ic-s", "et"] if dataset else ["ctcr", "cct"]
    builders = [_builder(n, dataset, args) for n in names]
    rows = run_comparison(builders, instance, variant)
    print(
        format_table(
            ["algorithm", "score", "covered", "categories", "seconds"],
            [
                [r.name, r.normalized_score, r.covered_count,
                 r.num_categories, round(r.seconds, 2)]
                for r in rows
            ],
        )
    )
    return 0


def cmd_sweep(args) -> int:
    instance, _dataset, variant = _load(args)
    deltas = delta_range(args.start, args.stop, args.step)
    points = threshold_sweep(CTCR(_ctcr_config(args)), instance, variant, deltas)
    print(
        format_table(
            ["delta", "score", "covered"],
            [[p.delta, p.normalized_score, p.covered_count] for p in points],
        )
    )
    return 0


def cmd_preprocess(args) -> int:
    variant = parse_variant(args.variant)
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    instance, report = preprocess(dataset, variant)
    print(
        f"{report.raw_queries} raw -> {report.after_cleaning} cleaned -> "
        f"{report.after_merging} candidate sets "
        f"(relevance threshold {report.relevance_threshold})"
    )
    dump_instance(instance, args.output)
    print(f"instance written to {args.output}")
    return 0


def cmd_serve(args) -> int:
    """Serve a category tree over HTTP (snapshot-backed, hot-swappable)."""
    from repro.labeling import apply_label_suggestions, suggest_labels
    from repro.serving import ServingEngine, SnapshotStore, make_server

    store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir else None
    use_bitset = {"auto": None, "on": True, "off": False}[args.bitset]
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1 and store is None:
        print(
            "error: --workers > 1 requires --snapshot-dir (worker "
            "processes coordinate through the store's CURRENT pointer)",
            file=sys.stderr,
        )
        return 2

    if store is not None and store.current_id() is not None:
        loaded = store.load()
        print(
            f"loaded snapshot {loaded.info.snapshot_id} "
            f"(variant {loaded.info.variant}, score {loaded.info.score:.4f})"
        )
        engine = ServingEngine.from_snapshot(
            loaded, cache_size=args.cache_size, use_bitset=use_bitset,
            tree_repr=args.tree_repr,
        )
    else:
        instance, dataset, variant = _load(args)
        builder = _builder(args.algorithm, dataset, args)
        tree = builder.build(instance, variant)
        apply_label_suggestions(tree, suggest_labels(tree, instance, variant))
        if store is not None:
            info = store.save(tree, instance, variant, flat_shards=args.shards)
            print(f"built and saved snapshot {info.snapshot_id}")
            engine = ServingEngine.from_snapshot(
                store.load(info.snapshot_id),
                cache_size=args.cache_size, use_bitset=use_bitset,
                tree_repr=args.tree_repr,
            )
        else:
            engine = ServingEngine.from_tree(
                tree, instance, variant,
                cache_size=args.cache_size, use_bitset=use_bitset,
                tree_repr=args.tree_repr,
            )

    if args.workers > 1:
        return _serve_multi(args, store)
    server = make_server(
        engine, host=args.host, port=args.port,
        store=store, max_requests=args.max_requests,
        tree_repr=args.tree_repr,
    )
    return _serve_loop(server, engine)


def _serve_multi(args, store) -> int:
    """Run N SO_REUSEPORT worker processes on one mmap'd snapshot."""
    from repro.serving.supervisor import ServingSupervisor

    use_bitset = {"auto": None, "on": True, "off": False}[args.bitset]
    # Sharding is fixed at compile time; ensure the flat layout exists
    # with the requested shard count before the workers map it.
    paths = store.ensure_flat(store.current_id(), shards=args.shards)
    supervisor = ServingSupervisor(
        store,
        n_workers=args.workers,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        use_bitset=use_bitset,
        poll_interval=args.poll_interval,
        max_requests=args.max_requests,
        tree_repr=args.tree_repr,
    )
    supervisor.start()
    print(
        f"serving on {supervisor.base_url} with {args.workers} workers "
        f"(snapshot {store.current_id()}, {len(paths)} flat shard(s), "
        f"pids {supervisor.pids()})",
        flush=True,
    )
    try:
        if args.max_requests is not None:
            supervisor.join()
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        supervisor.stop()
    gauges = supervisor.gauges()
    print(
        f"stopped {args.workers} workers "
        f"({int(gauges['serving.workers.respawns'])} respawns)"
    )
    return 0


def _serve_loop(server, engine) -> int:
    """Announce the bound address and serve until shutdown/interrupt."""
    host, port = server.server_address[:2]
    print(
        f"serving on http://{host}:{port} "
        f"(generation {engine.generation}, snapshot "
        f"{engine.current.snapshot_id or '<in-memory>'})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    stats = engine.stats()
    print(
        f"served {stats['requests']} requests "
        f"(cache hit rate {stats['cache']['hit_rate']:.2f})"
    )
    return 0


def _query_engine(args):
    """Resolve a ServingEngine for offline query categorization.

    Mirrors ``cmd_serve``'s sourcing rules: serve the store's CURRENT
    snapshot when one exists, otherwise build from the dataset/instance
    flags (saving to the store when given).
    """
    from repro.labeling import apply_label_suggestions, suggest_labels
    from repro.serving import ServingEngine, SnapshotStore

    use_bitset = {"auto": None, "on": True, "off": False}[args.bitset]
    store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir else None
    if store is not None and store.current_id() is not None:
        loaded = store.load()
        print(
            f"loaded snapshot {loaded.info.snapshot_id} "
            f"(variant {loaded.info.variant})"
        )
        return ServingEngine.from_snapshot(
            loaded, use_bitset=use_bitset, tree_repr=args.tree_repr
        )
    instance, dataset, variant = _load(args)
    builder = _builder(args.algorithm, dataset, args)
    tree = builder.build(instance, variant)
    apply_label_suggestions(tree, suggest_labels(tree, instance, variant))
    if store is not None:
        info = store.save(tree, instance, variant)
        print(f"built and saved snapshot {info.snapshot_id}")
        return ServingEngine.from_snapshot(
            store.load(info.snapshot_id),
            use_bitset=use_bitset, tree_repr=args.tree_repr,
        )
    return ServingEngine.from_tree(
        tree, instance, variant,
        use_bitset=use_bitset, tree_repr=args.tree_repr,
    )


def cmd_categorize_query(args) -> int:
    """Categorize free-text queries via the staged back-off procedure."""
    import json

    queries = list(args.query or [])
    if args.queries_file:
        with open(args.queries_file, encoding="utf-8") as f:
            queries.extend(line.strip() for line in f if line.strip())
    if not queries:
        print(
            "error: give at least one --query or a --queries-file",
            file=sys.stderr,
        )
        return 2
    engine = _query_engine(args)
    results = engine.categorize_queries(
        queries, threshold=args.confidence_threshold, top_k=args.top_k
    )
    if args.json:
        print(json.dumps(results, indent=2))
        return 0
    for result in results:
        if result["cid"] is None:
            print(f"{result['query']!r}: uncategorized ({result['stage']})")
            continue
        crumb = " > ".join(p["label"] for p in result["path"])
        print(
            f"{result['query']!r} -> {crumb} "
            f"[{result['stage']}, confidence {result['confidence']:.2f}]"
        )
    return 0


def cmd_analytics(args) -> int:
    """Offline serving analytics over recorded run manifests."""
    import json

    from repro.analytics import (
        category_performance,
        detect_traffic_drift,
        load_serving_counters,
    )
    from repro.serving import SnapshotStore
    from repro.serving.indexes import SnapshotIndexes

    store = SnapshotStore(args.snapshot_dir)
    if (args.snapshot or store.current_id()) is None:
        print(
            f"error: no CURRENT snapshot in {args.snapshot_dir}; "
            "pass --snapshot ID",
            file=sys.stderr,
        )
        return 2
    loaded = store.load(args.snapshot)
    indexes = SnapshotIndexes(loaded.tree, loaded.instance, loaded.variant)
    counters = load_serving_counters(args.manifests)

    if args.action == "report":
        report = category_performance(
            indexes,
            counters,
            instance=loaded.instance,
            min_share=args.min_traffic,
            top=args.top,
        )
        print(report.format_table())
        payload = report.to_dict()
    else:
        recommendation = detect_traffic_drift(
            indexes,
            loaded.instance,
            counters,
            relative_threshold=args.drift_threshold,
            min_share=args.min_traffic,
            rebuild_threshold=args.rebuild_threshold,
        )
        verdict = (
            "REBUILD RECOMMENDED"
            if recommendation.should_rebuild
            else "no rebuild needed"
        )
        print(f"{verdict}: {recommendation.reason}")
        for outlier in recommendation.drifted:
            print(
                f"  cid {outlier.key}: live {outlier.observed:.1%} vs "
                f"build {outlier.expected:.1%} ({outlier.ratio:.1f}x)"
            )
        payload = recommendation.to_dict()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"JSON written to {args.output}")
    return 0


def cmd_inspect_snapshot(args) -> int:
    """Print the flat section table of a snapshot's shard files."""
    from pathlib import Path

    from repro.serving import SnapshotStore, describe_flat
    from repro.serving.shm import SECTION_GROUPS

    target = Path(args.dir)
    if (target / "manifest.json").exists():
        # A snapshot directory directly.
        paths = sorted(target.glob("indexes-*.flat"))
    else:
        store = SnapshotStore(target)
        snapshot_id = args.snapshot or store.current_id()
        if snapshot_id is None:
            print(
                f"error: no CURRENT snapshot in {target}; "
                "pass --snapshot ID",
                file=sys.stderr,
            )
            return 2
        paths = store.flat_paths(snapshot_id)
    if not paths:
        print(
            "error: no flat shard files found (save with flat_shards >= 1 "
            "or backfill via SnapshotStore.ensure_flat)",
            file=sys.stderr,
        )
        return 2

    group_totals: dict[str, int] = {}
    grand_total = 0
    for path in paths:
        info = describe_flat(path)
        total = sum(s["bytes"] for s in info["sections"]) or 1
        header = info["header"]
        print(
            f"{path.name}: format v{info['format_version']}, "
            f"reprs {'+'.join(header.get('reprs', ['flat']))}, "
            f"shard {header['shard_index'] + 1}/{header['shard_count']}, "
            f"{info['file_bytes']} bytes on disk"
        )
        print(
            format_table(
                ["section", "group", "kind", "count", "bytes", "%"],
                [
                    [
                        s["name"], s["group"], s["kind"], s["count"],
                        s["bytes"], round(100.0 * s["bytes"] / total, 1),
                    ]
                    for s in info["sections"]
                ],
            )
        )
        for s in info["sections"]:
            group_totals[s["group"]] = (
                group_totals.get(s["group"], 0) + s["bytes"]
            )
            grand_total += s["bytes"]

    print("group subtotals (all shards):")
    print(
        format_table(
            ["group", "bytes", "%"],
            [
                [g, b, round(100.0 * b / (grand_total or 1), 1)]
                for g, b in sorted(
                    group_totals.items(), key=lambda kv: -kv[1]
                )
            ],
        )
    )
    # The headline of the succinct read path: tree+postings bytes of the
    # dense layout vs. the Euler/varint layout, when both are present.
    dense = group_totals.get("dense", 0)
    succinct = sum(
        group_totals.get(g, 0)
        for g in ("succinct_tree", "succinct_postings")
    )
    if dense and succinct:
        print(
            f"dense postings+bitset: {dense} bytes; succinct "
            f"euler+varint: {succinct} bytes "
            f"({dense / succinct:.1f}x smaller)"
        )
    unknown = set(group_totals) - set(SECTION_GROUPS) - {"?"}
    if unknown:  # pragma: no cover - future formats
        print(f"note: unrecognized groups {sorted(unknown)}")
    return 0


def cmd_shape(args) -> int:
    """Shape a saved tree against an explicit serving budget."""
    import json as _json

    from repro.shaping import (
        CostModel,
        ShapingBudget,
        TreeShaper,
        calibrate_cost_model,
    )

    instance, _dataset, variant = _load(args)
    tree = load_tree(args.tree)
    budget = ShapingBudget(
        max_query_ns=args.max_query_ns,
        max_snapshot_bytes=args.max_snapshot_bytes,
        max_depth=args.max_depth,
        max_children=args.max_children,
    )
    if args.calibrate == "on":
        model = calibrate_cost_model(tree, instance, variant)
    else:
        model = CostModel()
    result = TreeShaper(instance, variant, model).shape(tree, budget)
    print(
        f"budget {'met' if result.met else 'NOT met'}: "
        f"query {result.cost_before.expected_query_ns:.0f} -> "
        f"{result.cost_after.expected_query_ns:.0f} ns, "
        f"snapshot {result.cost_before.snapshot_bytes} -> "
        f"{result.cost_after.snapshot_bytes} bytes"
    )
    print(
        f"categories {result.cost_before.n_categories} -> "
        f"{result.cost_after.n_categories} "
        f"(depth-capped {result.depth_capped}, width-pruned "
        f"{result.width_pruned}, hub splits {result.hub_splits})"
    )
    print(
        f"score {result.score_before:.4f} -> {result.score_after:.4f} "
        f"(gave up {result.quality_given_up:.4f})"
    )
    if args.output:
        dump_tree(result.tree, args.output)
        print(f"shaped tree written to {args.output}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            _json.dump(result.to_dict(), f, indent=2, sort_keys=True)
        print(f"shaping report written to {args.report}")
    return 0 if result.met else 1


def cmd_synthesize(args) -> int:
    """Generate an extreme-scale synthetic catalog deterministically."""
    from repro.scale import ExtremeCatalog, ScaleSpec

    spec = ScaleSpec(
        n_items=args.items,
        n_sets=args.sets,
        n_nodes=args.nodes,
        seed=args.seed,
        zipf_s=args.zipf,
        size_zipf_s=args.size_zipf,
        fanin_alpha=args.fanin_alpha,
        overlap=args.overlap,
        conflict_density=args.conflict_density,
        min_set_size=args.min_set_size,
        max_set_size=args.max_set_size,
    )
    catalog = ExtremeCatalog(spec)
    stats = catalog.stats()
    print(
        f"{stats['n_items']} items, {stats['n_sets']} sets, "
        f"{stats['n_nodes']} planted nodes ({stats['n_leaves']} leaves, "
        f"depth {stats['max_depth']}, max fan-out {stats['max_fanout']}), "
        f"seed {stats['seed']}"
    )
    if args.fingerprint:
        print(f"fingerprint {catalog.fingerprint()}")
    if args.output:
        dump_instance(catalog.instance(), args.output)
        print(f"instance written to {args.output}")
    if args.tree_output:
        dump_tree(catalog.planted_tree(), args.tree_output)
        print(f"planted tree written to {args.tree_output}")
    return 0


def cmd_trends(args) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    trending = detect_trending_queries(dataset.query_log, window=args.window)
    fading = fading_queries(dataset.query_log, window=args.window)
    print(f"trending queries (last {args.window} days):")
    for t in trending[:10]:
        lift = "new" if t.lift == float("inf") else f"{t.lift:.1f}x"
        print(f"  {t.text!r}: {t.recent_daily:.1f}/day ({lift})")
    if not trending:
        print("  (none)")
    print("fading queries:")
    for q in fading[:10]:
        print(f"  {q.text!r}")
    if not fading:
        print("  (none)")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automated category-tree construction (SIGMOD'22 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dataset",
            choices=sorted(DATASET_SPECS),
            default="A",
            help="synthetic dataset to generate (default: A)",
        )
        p.add_argument(
            "--instance",
            help="path to an instance JSON (overrides --dataset)",
        )
        p.add_argument("--scale", type=float, default=None,
                       help="scale relative to paper size (default: repro)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--variant",
            default="threshold-jaccard:0.8",
            help="e.g. threshold-jaccard:0.8, perfect-recall:0.6, exact",
        )
        p.add_argument(
            "--jobs",
            type=_jobs_arg,
            default=1,
            help="worker processes for the parallel stages of CTCR and "
            "CCT's embedding pass (-1 = all CPUs, default: 1)",
        )
        p.add_argument(
            "--bitset",
            choices=["auto", "on", "off"],
            default="auto",
            help="batched-intersection engine for CTCR and CCT: the "
            "packed bitset kernel (on), plain set operations (off), or "
            "size-based auto-selection (default)",
        )
        p.add_argument(
            "--mis-jobs",
            type=_jobs_arg,
            default=1,
            help="worker processes for the hypergraph MIS stage: "
            "conflict components solve in parallel "
            "(-1 = all CPUs, default: 1)",
        )
        p.add_argument(
            "--mis-cache",
            choices=["on", "off"],
            default="on",
            help="memoize solved MIS components across builds in this "
            "process — threshold sweeps re-solve near-identical "
            "conflict structures per delta (default: on)",
        )
        p.add_argument(
            "--cct-cache",
            choices=["on", "off"],
            default="on",
            help="memoize CCT's pairwise intersection counts across "
            "builds in this process — threshold sweeps re-derive "
            "embeddings from cached counts per delta (default: on)",
        )
        p.add_argument(
            "--cct-cluster",
            choices=["nn-chain", "legacy"],
            default="nn-chain",
            help="CCT clustering engine: the nearest-neighbor-chain "
            "algorithm (default) or the legacy greedy global-minimum "
            "loop kept for equivalence testing",
        )
        p.add_argument(
            "--trace",
            action="store_true",
            help="collect per-stage spans/counters and print them "
            "after the run",
        )
        p.add_argument(
            "--manifest",
            metavar="PATH",
            help="write a machine-readable run manifest JSON here "
            "(implies tracing)",
        )
        p.add_argument(
            "--profile",
            metavar="PATH",
            help="dump cProfile stats of the run here (implies tracing)",
        )

    # "oct" is the paper's name for the problem; both spellings build one
    # tree with identical flags.
    for cmd_name, cmd_help in (
        ("build", "build one tree"),
        ("oct", "alias for build"),
    ):
        p_build = sub.add_parser(cmd_name, help=cmd_help)
        add_common(p_build)
        p_build.add_argument(
            "--algorithm",
            choices=["ctcr", "cct", "ic-s", "ic-q", "et"],
            default="ctcr",
        )
        p_build.add_argument("--output", help="write the tree JSON here")
        p_build.add_argument("--show", action="store_true",
                             help="print the tree structure")
        p_build.add_argument(
            "--delta-from",
            metavar="DIR",
            help="snapshot-store directory: delta-build against its "
            "CURRENT snapshot's saved state (full build when absent), "
            "then save the result back as a new snapshot (ctcr only)",
        )
        p_build.set_defaults(func=cmd_build)

    p_eval = sub.add_parser("evaluate", help="score a saved tree")
    add_common(p_eval)
    p_eval.add_argument("--tree", required=True, help="tree JSON path")
    p_eval.set_defaults(func=cmd_evaluate)

    p_cmp = sub.add_parser("compare", help="run all algorithms")
    add_common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_sweep = sub.add_parser("sweep", help="CTCR threshold sweep")
    add_common(p_sweep)
    p_sweep.add_argument("--start", type=float, default=0.5)
    p_sweep.add_argument("--stop", type=float, default=1.0)
    p_sweep.add_argument("--step", type=float, default=0.1)
    p_sweep.set_defaults(func=cmd_sweep)

    p_prep = sub.add_parser(
        "preprocess", help="export a preprocessed instance JSON"
    )
    add_common(p_prep)
    p_prep.add_argument("--output", required=True, help="instance JSON path")
    p_prep.set_defaults(func=cmd_preprocess)

    p_trends = sub.add_parser("trends", help="trending/fading queries")
    add_common(p_trends)
    p_trends.add_argument("--window", type=int, default=14)
    p_trends.set_defaults(func=cmd_trends)

    p_serve = sub.add_parser(
        "serve", help="serve a tree over HTTP (snapshots + hot swap)"
    )
    add_common(p_serve)
    p_serve.add_argument(
        "--algorithm",
        choices=["ctcr", "cct", "ic-s", "ic-q", "et"],
        default="ctcr",
        help="builder used when no stored snapshot exists yet",
    )
    p_serve.add_argument(
        "--snapshot-dir",
        metavar="PATH",
        help="snapshot store directory: serve its CURRENT snapshot when "
        "one exists, otherwise build from the dataset/instance flags and "
        "save the result there (omit to serve a one-off in-memory build)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8077,
        help="TCP port (0 picks a free port; default: 8077)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=4096,
        help="LRU result-cache capacity in entries (0 disables caching)",
    )
    p_serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="shut down after N requests (smoke tests and CI; "
        "default: serve forever)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="serve from N worker processes sharing the port via "
        "SO_REUSEPORT, each mmap-ing the snapshot's flat layout "
        "(requires --snapshot-dir; default: 1, in-process)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="split the flat snapshot's item data into N shard files "
        "(category tree replicated per shard; default: 1)",
    )
    p_serve.add_argument(
        "--poll-interval", type=float, default=0.25, metavar="SECONDS",
        help="how often workers poll the store's CURRENT pointer for "
        "hot swaps (default: 0.25)",
    )
    p_serve.add_argument(
        "--tree-repr",
        choices=["flat", "succinct"],
        default="flat",
        help="read-path representation: the flat pointer-chase layout "
        "(default) or the succinct Euler-tour/varint structures "
        "(identical answers, smaller indexes, batched-LCA categorize)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_querycat = sub.add_parser(
        "categorize-query",
        help="map free-text queries onto the tree (staged back-off)",
    )
    add_common(p_querycat)
    p_querycat.add_argument(
        "--algorithm",
        choices=["ctcr", "cct", "ic-s", "ic-q", "et"],
        default="ctcr",
        help="builder used when no stored snapshot exists yet",
    )
    p_querycat.add_argument(
        "--snapshot-dir",
        metavar="PATH",
        help="snapshot store directory: categorize against its CURRENT "
        "snapshot when one exists, otherwise build from the dataset/"
        "instance flags and save the result there (omit for a one-off "
        "in-memory build)",
    )
    p_querycat.add_argument(
        "--query",
        action="append",
        metavar="TEXT",
        help="a query to categorize (repeatable)",
    )
    p_querycat.add_argument(
        "--queries-file",
        metavar="PATH",
        help="file with one query per line (combined with --query)",
    )
    p_querycat.add_argument(
        "--confidence-threshold",
        type=float,
        default=None,
        metavar="X",
        help="back off up the hierarchy below this stage confidence "
        "(default: 0.5)",
    )
    p_querycat.add_argument(
        "--top-k",
        type=int,
        default=None,
        metavar="N",
        help="label-search candidates feeding the overlap and back-off "
        "stages (default: 10)",
    )
    p_querycat.add_argument(
        "--tree-repr",
        choices=["flat", "succinct"],
        default="flat",
        help="read-path representation (answers are identical)",
    )
    p_querycat.add_argument(
        "--json",
        action="store_true",
        help="print the full result JSON instead of one line per query",
    )
    p_querycat.set_defaults(func=cmd_categorize_query)

    p_analytics = sub.add_parser(
        "analytics",
        help="offline serving analytics: category report + drift detection",
    )
    add_common(p_analytics)
    p_analytics.add_argument(
        "action",
        choices=["report", "drift"],
        help="report: per-category traffic/coverage/penetration rollup; "
        "drift: compare live traffic against build-time weights and "
        "recommend a rebuild",
    )
    p_analytics.add_argument(
        "--manifests",
        action="append",
        required=True,
        metavar="PATH",
        help="run-manifest JSON file, or a directory of them "
        "(repeatable; counters sum across manifests)",
    )
    p_analytics.add_argument(
        "--snapshot-dir",
        required=True,
        metavar="PATH",
        help="snapshot store holding the tree the traffic was served from",
    )
    p_analytics.add_argument(
        "--snapshot",
        metavar="ID",
        help="analyze this snapshot id instead of CURRENT",
    )
    p_analytics.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="only the N heaviest report rows (default: all)",
    )
    p_analytics.add_argument(
        "--min-traffic",
        type=float,
        default=0.02,
        metavar="SHARE",
        help="ignore categories below this traffic share in report rows "
        "and drift outliers (default: 0.02)",
    )
    p_analytics.add_argument(
        "--drift-threshold",
        type=float,
        default=2.0,
        metavar="X",
        help="per-category relative divergence factor worth flagging "
        "(default: 2.0)",
    )
    p_analytics.add_argument(
        "--rebuild-threshold",
        type=float,
        default=0.25,
        metavar="TV",
        help="total-variation distance between live and build-time "
        "traffic shares that triggers a rebuild recommendation "
        "(default: 0.25)",
    )
    p_analytics.add_argument(
        "--output",
        metavar="PATH",
        help="also write the report/recommendation JSON here",
    )
    p_analytics.set_defaults(func=cmd_analytics)

    p_inspect = sub.add_parser(
        "inspect-snapshot",
        help="print a flat snapshot's section table (bytes per section)",
    )
    add_common(p_inspect)
    p_inspect.add_argument(
        "dir",
        help="a snapshot store root (inspects its CURRENT snapshot) or "
        "one snapshot directory",
    )
    p_inspect.add_argument(
        "--snapshot",
        metavar="ID",
        help="inspect this snapshot id instead of CURRENT (store roots "
        "only)",
    )
    p_inspect.set_defaults(func=cmd_inspect_snapshot)

    p_shape = sub.add_parser(
        "shape",
        help="reshape a saved tree to meet a serving latency/memory "
        "budget, reporting the score it gave up (exit 1 when the "
        "budget cannot be met)",
    )
    add_common(p_shape)
    p_shape.add_argument("--tree", required=True, help="tree JSON path")
    p_shape.add_argument(
        "--max-query-ns",
        type=float,
        default=None,
        help="expected per-query serving budget in nanoseconds under "
        "the cost model (default: unbounded)",
    )
    p_shape.add_argument(
        "--max-snapshot-bytes",
        type=int,
        default=None,
        help="snapshot size budget in bytes, measured with the "
        "varint postings codec (default: unbounded)",
    )
    p_shape.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="collapse subtrees below this depth (default: unbounded)",
    )
    p_shape.add_argument(
        "--max-children",
        type=int,
        default=None,
        help="split hub categories until no node has more children "
        "than this (default: unbounded)",
    )
    p_shape.add_argument(
        "--calibrate",
        choices=["on", "off"],
        default="off",
        help="fit the cost model by timing the succinct read path on "
        "this tree and workload before shaping (default: off = "
        "built-in constants)",
    )
    p_shape.add_argument("--output", help="write the shaped tree JSON here")
    p_shape.add_argument(
        "--report", help="write the shaping result JSON here"
    )
    p_shape.set_defaults(func=cmd_shape)

    p_synth = sub.add_parser(
        "synthesize",
        help="generate an extreme-scale synthetic catalog (seeded, "
        "byte-reproducible across processes and Python versions)",
    )
    add_common(p_synth)
    p_synth.add_argument(
        "--items", type=int, default=100000,
        help="catalog item universe size (default: 100000)",
    )
    p_synth.add_argument(
        "--sets", type=int, default=2000,
        help="candidate category (input set) count (default: 2000)",
    )
    p_synth.add_argument(
        "--nodes", type=int, default=None,
        help="planted taxonomy node count (default: max(16, sets/4))",
    )
    p_synth.add_argument(
        "--zipf", type=float, default=1.05,
        help="Zipf exponent of the query-weight distribution "
        "(default: 1.05)",
    )
    p_synth.add_argument(
        "--size-zipf", type=float, default=1.1,
        help="Zipf exponent of the leaf item-quota distribution "
        "(default: 1.1)",
    )
    p_synth.add_argument(
        "--fanin-alpha", type=float, default=0.6,
        help="preferential-attachment copying probability driving the "
        "power-law category fan-in (default: 0.6)",
    )
    p_synth.add_argument(
        "--overlap", type=float, default=0.15,
        help="fraction of sets borrowing items from a sibling branch "
        "(default: 0.15)",
    )
    p_synth.add_argument(
        "--conflict-density", type=float, default=0.05,
        help="fraction of sets spanning two unrelated branches "
        "(default: 0.05)",
    )
    p_synth.add_argument(
        "--min-set-size", type=int, default=4,
        help="smallest candidate set (default: 4)",
    )
    p_synth.add_argument(
        "--max-set-size", type=int, default=64,
        help="largest candidate set before overlap/conflict unions "
        "(default: 64)",
    )
    p_synth.add_argument(
        "--fingerprint", action="store_true",
        help="print the dataset's streaming sha256 fingerprint",
    )
    p_synth.add_argument(
        "--output", help="write the materialized instance JSON here"
    )
    p_synth.add_argument(
        "--tree-output", help="write the planted taxonomy JSON here"
    )
    p_synth.set_defaults(func=cmd_synthesize)

    return parser


def _run_config(args) -> dict:
    """The manifest's record of what was asked for (flag values)."""
    skip = {"func", "trace", "manifest", "profile"}
    return {k: v for k, v in vars(args).items() if k not in skip}


def _run_observed(args) -> int:
    """Run one command under a tracer; report as the flags request."""
    import cProfile

    profiler = cProfile.Profile() if args.profile else None
    with use_tracer(Tracer()) as tracer:
        with tracer.span(f"cli.{args.command}"):
            if profiler is not None:
                profiler.enable()
            try:
                rc = args.func(args)
            finally:
                if profiler is not None:
                    profiler.disable()
    if profiler is not None:
        profiler.dump_stats(args.profile)
        print(f"profile written to {args.profile}", file=sys.stderr)
    if args.trace:
        print(tracer.format_tree(), file=sys.stderr)
    if args.manifest:
        manifest = RunManifest.collect(
            tracer, tool=f"repro {args.command}", config=_run_config(args)
        )
        manifest.save(args.manifest)
        print(f"manifest written to {args.manifest}", file=sys.stderr)
    return rc


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if getattr(args, "trace", False) or getattr(args, "manifest", None) \
            or getattr(args, "profile", None):
        return _run_observed(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
