"""Embeddings: hashed TF-IDF titles and set-membership signatures."""

from repro.embeddings.membership import (
    SignatureGroups,
    membership_groups,
    signature_vectors,
)
from repro.embeddings.text import tfidf_vectors, title_embeddings

__all__ = [
    "SignatureGroups",
    "membership_groups",
    "signature_vectors",
    "tfidf_vectors",
    "title_embeddings",
]
