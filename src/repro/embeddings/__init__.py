"""Embeddings: hashed TF-IDF titles, set signatures, sparse-vector math."""

from repro.embeddings.membership import (
    SignatureGroups,
    membership_groups,
    signature_vectors,
)
from repro.embeddings.text import tfidf_vectors, title_embeddings
from repro.embeddings.vectors import centroid, cosine

__all__ = [
    "SignatureGroups",
    "centroid",
    "cosine",
    "membership_groups",
    "signature_vectors",
    "tfidf_vectors",
    "title_embeddings",
]
