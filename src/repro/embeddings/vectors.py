"""Sparse-vector arithmetic shared by the embedding consumers.

Embeddings in this package are sparse token->weight dicts (see
:func:`repro.embeddings.text.tfidf_vectors`). The maintenance tools
(outlier detection, item classification) both reduce member vectors to a
category centroid and compare candidates by cosine similarity; those two
primitives live here so every consumer measures "semantic closeness" the
same way.
"""

from __future__ import annotations


def centroid(vectors: list[dict[str, float]]) -> dict[str, float]:
    """The component-wise mean of sparse vectors (``{}`` for no vectors)."""
    if not vectors:
        return {}
    total: dict[str, float] = {}
    for vec in vectors:
        for token, value in vec.items():
            total[token] = total.get(token, 0.0) + value
    n = len(vectors)
    return {token: value / n for token, value in total.items()}


def cosine(a: dict[str, float], b: dict[str, float]) -> float:
    """Cosine similarity of sparse vectors (0.0 when either is zero)."""
    if len(b) < len(a):
        a, b = b, a
    dot = sum(value * b.get(token, 0.0) for token, value in a.items())
    norm_a = sum(v * v for v in a.values()) ** 0.5
    norm_b = sum(v * v for v in b.values()) ** 0.5
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)
