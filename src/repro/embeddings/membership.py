"""Item membership signatures for the IC-Q baseline.

IC-Q represents each item as the binary vector of the input sets it
appears in. Items sharing a signature are interchangeable for the
clustering, so they are compressed into signature groups first — an
exact reduction that makes clustering feasible on large catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.input_sets import OCTInstance

Item = Hashable


@dataclass
class SignatureGroups:
    """Items grouped by identical set membership."""

    signatures: list[frozenset[int]]  # sids per group
    members: list[list[Item]]  # items per group, aligned with signatures

    def __len__(self) -> int:
        return len(self.signatures)


def membership_groups(
    instance: OCTInstance, include_universe: bool = True
) -> SignatureGroups:
    """Group universe items by the sets containing them.

    Items outside every input set share the empty signature (one group).
    """
    containing = instance.sets_containing()
    by_signature: dict[frozenset[int], list[Item]] = {}
    items = instance.universe if include_universe else containing.keys()
    for item in items:
        signature = frozenset(q.sid for q in containing.get(item, ()))
        by_signature.setdefault(signature, []).append(item)
    signatures = sorted(by_signature, key=lambda s: (len(s), sorted(s)))
    return SignatureGroups(
        signatures=signatures,
        members=[sorted(by_signature[s], key=str) for s in signatures],
    )


def signature_vectors(
    groups: SignatureGroups, instance: OCTInstance
) -> np.ndarray:
    """Dense 0/1 membership matrix, one row per signature group."""
    order = {q.sid: i for i, q in enumerate(instance.sets)}
    matrix = np.zeros((len(groups), len(order)), dtype=np.float64)
    for row, signature in enumerate(groups.signatures):
        for sid in signature:
            matrix[row, order[sid]] = 1.0
    return matrix
