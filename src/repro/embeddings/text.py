"""Title embeddings for the IC-S baseline.

The paper's IC-S uses title embeddings from a proprietary
domain-trained model. As the offline substitute we use TF-IDF-weighted
feature hashing into a fixed-dimension space (deterministic — CRC-based
hashing, no process-salted ``hash``), followed by L2 normalization.
This preserves the property the baseline depends on: items with similar
titles (and therefore similar attributes) land close together.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.search.analyzer import tokenize


def _hash_token(token: str, dim: int) -> tuple[int, float]:
    """Stable (bucket, sign) pair for one token."""
    digest = zlib.crc32(token.encode("utf-8"))
    bucket = digest % dim
    sign = 1.0 if (digest >> 16) & 1 else -1.0
    return bucket, sign


def title_embeddings(titles: list[str], dim: int = 64) -> np.ndarray:
    """Embed titles as L2-normalized hashed TF-IDF vectors.

    Returns an array of shape ``(len(titles), dim)``. Empty titles embed
    to the zero vector.
    """
    if dim < 1:
        raise ValueError("embedding dimension must be positive")
    token_lists = [tokenize(t) for t in titles]
    df: dict[str, int] = {}
    for tokens in token_lists:
        for token in set(tokens):
            df[token] = df.get(token, 0) + 1
    n = len(titles)
    idf = {
        token: math.log(1.0 + n / (1.0 + count)) for token, count in df.items()
    }
    vectors = np.zeros((n, dim), dtype=np.float64)
    for row, tokens in enumerate(token_lists):
        counts: dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        for token, tf in counts.items():
            bucket, sign = _hash_token(token, dim)
            vectors[row, bucket] += sign * tf * idf[token]
    norms = np.linalg.norm(vectors, axis=1)
    nonzero = norms > 0
    vectors[nonzero] /= norms[nonzero, None]
    return vectors


def tfidf_vectors(titles: list[str]) -> list[dict[str, float]]:
    """Sparse L2-normalized TF-IDF vectors (for cohesiveness metrics)."""
    token_lists = [tokenize(t) for t in titles]
    df: dict[str, int] = {}
    for tokens in token_lists:
        for token in set(tokens):
            df[token] = df.get(token, 0) + 1
    n = len(titles)
    idf = {
        token: math.log(1.0 + n / (1.0 + count)) for token, count in df.items()
    }
    result: list[dict[str, float]] = []
    for tokens in token_lists:
        counts: dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        vec = {token: tf * idf[token] for token, tf in counts.items()}
        norm = math.sqrt(sum(v * v for v in vec.values()))
        if norm > 0:
            vec = {k: v / norm for k, v in vec.items()}
        result.append(vec)
    return result
