"""Packed-bitset similarity kernel for batched set comparisons.

The pairwise stages of CTCR (2-conflict classification, cover scoring)
compare every input set against every other. Doing that through Python
``set`` intersections costs a dictionary operation per shared item pair;
this module instead packs each set into a row of a NumPy ``uint64`` bit
matrix over a shared item universe and answers batched questions with
bitwise AND + popcount, plus an output-sensitive sparse path for the
(common) regime where most pairs do not intersect at all.

Two complementary representations live on :class:`BitsetUniverse`:

* **incidence arrays** — flat ``(row, item-code)`` pairs, built eagerly.
  They drive :meth:`intersecting_pairs`, which enumerates only the pairs
  that actually share items (cost proportional to the number of shared
  item pairs, all in vectorized NumPy).
* **bit matrix** — ``(n_sets, ceil(|U|/64))`` ``uint64`` rows, built
  lazily on first dense use. It drives the full n x n
  :meth:`pairwise_intersections` / :meth:`pairwise_jaccard` /
  :meth:`pairwise_f1` score matrices and the row-vs-packed-category
  intersections used by the item-assignment stage.

Score conventions match :mod:`repro.core.similarity` bit for bit:
``jaccard(emptyset, emptyset) = 1``, ``recall(emptyset, C) = 1``,
``precision(q, emptyset) = 0``.

Everything degrades gracefully: when NumPy is missing,
:func:`available` returns False and callers fall back to their
set-based paths (see :func:`should_use`).
"""

from __future__ import annotations

from itertools import chain, count
from typing import Iterable, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - the container always has numpy
    np = None  # type: ignore[assignment]

from repro.core.variants import ScoreMode, SimilarityKind, Variant
from repro.observability import get_tracer

# Same cutoff epsilon as repro.core.similarity.variant_score_from_sizes.
_SCORE_EPS = 1e-12

# Auto-mode gates: below these the packing overhead outweighs the win.
_AUTO_MIN_SETS = 48
_AUTO_MIN_ITEMS = 256


def available() -> bool:
    """True when the NumPy-backed kernel can be used at all."""
    return np is not None


# ---------------------------------------------------------------------------
# Arbitrary-precision int bitsets. NumPy rows are the right shape for dense
# batched popcounts, but enumeration-style consumers (the 3-conflict stage,
# the hypergraph branch-and-bound) want cheap single-row AND/iterate over
# sparse adjacency. Python ints are packed 64-bit words under the hood, so
# they serve as the kernel's scalar-row representation: one AND is a C-level
# word loop and these helpers never need NumPy at all.
# ---------------------------------------------------------------------------


def mask_of(indices: Iterable[int]) -> int:
    """Pack bit positions into one arbitrary-precision int bitset.

    >>> bin(mask_of([0, 2, 5]))
    '0b100101'
    """
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


def iter_bits(mask: int):
    """Yield the set bit positions of an int bitset, ascending.

    >>> list(iter_bits(0b100101))
    [0, 2, 5]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def should_use(
    n_sets: int, n_items: int, flag: bool | None = None
) -> bool:
    """Resolve an opt-in ``use_bitset`` flag against the environment.

    ``True`` forces the kernel (still requires NumPy), ``False`` forces
    the set-based path, and ``None`` auto-selects: the kernel is used
    when the instance is large enough for packing to pay off.
    """
    if flag is False or not available():
        return False
    if flag is True:
        return True
    return n_sets >= _AUTO_MIN_SETS and n_items >= _AUTO_MIN_ITEMS


def raw_similarity_from_size_arrays(
    kind: SimilarityKind,
    q_size: "np.ndarray",
    c_size: "np.ndarray",
    inter: "np.ndarray",
) -> "np.ndarray":
    """Vectorized ``raw_similarity_from_sizes`` over aligned size arrays.

    Elementwise (with broadcasting) over ``q_size``, ``c_size`` and
    ``inter``. Each entry performs the *same* IEEE operations as the
    scalar closed form in
    :func:`repro.core.similarity.raw_similarity_from_sizes`, so results
    are bit-identical to a pure-Python loop over the entries.
    """
    no_empty = bool(
        (q_size.size == 0 or q_size.min() > 0)
        and (c_size.size == 0 or c_size.min() > 0)
    )
    if kind is SimilarityKind.JACCARD:
        union = q_size + c_size - inter
        if no_empty:  # union >= max(q, c) > 0 everywhere
            return inter / union
        return np.where(union == 0, 1.0, inter / np.where(union == 0, 1, union))
    if kind is SimilarityKind.F1:
        denom = q_size + c_size
        if no_empty:
            return 2.0 * inter / denom
        return np.where(
            denom == 0, 1.0, 2.0 * inter / np.where(denom == 0, 1, denom)
        )
    # Perfect recall embeds as (precision + recall) / 2 (see
    # repro.core.similarity.raw_similarity): empty C has precision 0,
    # empty q has recall 1.
    if no_empty:
        return (inter / c_size + inter / q_size) / 2.0
    prec = np.where(c_size == 0, 0.0, inter / np.where(c_size == 0, 1, c_size))
    rec = np.where(q_size == 0, 1.0, inter / np.where(q_size == 0, 1, q_size))
    return (prec + rec) / 2.0


def raw_similarity_matrix(
    kind: SimilarityKind, sizes: "np.ndarray", inter: "np.ndarray"
) -> "np.ndarray":
    """Dense ``raw_similarity_from_sizes`` matrix from a size vector.

    ``sizes`` is the per-set cardinality vector and ``inter`` the dense
    ``n x n`` intersection-size matrix (``inter[i, i] = sizes[i]``).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    return raw_similarity_from_size_arrays(
        kind, sizes[:, None], sizes[None, :], inter
    )


if np is not None and hasattr(np, "bitwise_count"):

    def _popcount(a: "np.ndarray") -> "np.ndarray":
        return np.bitwise_count(a)

elif np is not None:  # pragma: no cover - numpy < 2.0 fallback
    _BYTE_COUNTS = None

    def _popcount(a: "np.ndarray") -> "np.ndarray":
        global _BYTE_COUNTS
        if _BYTE_COUNTS is None:
            _BYTE_COUNTS = np.array(
                [bin(i).count("1") for i in range(256)], dtype=np.uint64
            )
        by = a.view(np.uint8).reshape(a.shape + (8,))
        return _BYTE_COUNTS[by].sum(-1)


# ---------------------------------------------------------------------------
# Process-pool state for blocked dense pairwise computation. The matrix is
# shipped once per worker through the pool initializer (utils.parallel),
# not re-pickled with every chunk of row blocks.
# ---------------------------------------------------------------------------

_SHARED: dict = {}


def _install_shared_matrix(matrix) -> None:
    _SHARED["matrix"] = matrix


def _block_intersections(ranges: list[tuple[int, int]]) -> list:
    matrix = _SHARED["matrix"]
    tracer = get_tracer()
    out = []
    for lo, hi in ranges:
        out.append(
            _popcount(matrix[lo:hi, None, :] & matrix[None, :, :]).sum(
                -1, dtype=np.int64
            )
        )
        tracer.count(
            "bitset.words_touched", (hi - lo) * matrix.shape[0] * matrix.shape[1]
        )
    return out


class BitsetUniverse:
    """A family of item sets packed over a shared, indexed universe.

    ``sets`` may be any sequence of iterables of hashable items (plain
    sets, frozensets, :class:`InputSet` item sets). The universe defaults
    to their union; pass ``universe`` explicitly to pack against a larger
    item space (every set must be a subset of it).
    """

    def __init__(
        self,
        sets: Sequence[Iterable],
        universe: Iterable | None = None,
    ) -> None:
        if np is None:  # pragma: no cover - guarded by available()
            raise RuntimeError("BitsetUniverse requires numpy")
        families = [
            s if isinstance(s, frozenset) else frozenset(s) for s in sets
        ]
        if universe is None:
            union: "set | frozenset" = set()
            for s in families:
                union |= s
        elif isinstance(universe, (set, frozenset)):
            union = universe
        else:
            union = set(universe)
        self.n_sets = len(families)
        self.sizes = np.fromiter(
            map(len, families), dtype=np.int64, count=self.n_sets
        )
        flat = list(chain.from_iterable(families))

        # Item -> code mapping. Integer universes are mapped wholesale
        # through a C-level sort + searchsorted; everything else (string
        # ids, mixed test universes) goes through a Python dict, which
        # benchmarks faster than numpy's string comparisons. Every public
        # result is invariant to the code order either way. A one-element
        # probe gates the array attempt so string universes skip the
        # wasted ndarray round-trip entirely.
        cols = None
        items: tuple = ()
        if union and isinstance(next(iter(union)), (int, np.integer)):
            try:
                uni_arr = np.asarray(list(union))
                if uni_arr.ndim == 1 and uni_arr.dtype.kind in "iu":
                    uni_arr = np.sort(uni_arr)
                    items = tuple(uni_arr.tolist())
                    cols = np.searchsorted(
                        uni_arr, np.asarray(flat, dtype=uni_arr.dtype)
                    ).astype(np.int64)
            except (TypeError, ValueError):
                cols = None
        if cols is None:
            items = tuple(union)
            self._index = dict(zip(items, count()))
            cols = np.fromiter(
                map(self._index.__getitem__, flat),
                dtype=np.int64,
                count=len(flat),
            )
        else:
            self._index = None  # built lazily by .index when packing
        self.items = items
        self.n_items = len(items)
        self.n_words = max(1, (self.n_items + 63) // 64)
        self._cols = cols
        self._rows = np.repeat(
            np.arange(self.n_sets, dtype=np.int64), self.sizes
        )
        self._matrix = None
        self._pairwise = None

    @property
    def index(self) -> dict:
        """Item -> column-code mapping (lazy; only packing needs it)."""
        if self._index is None:
            self._index = dict(zip(self.items, count()))
        return self._index

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_instance(cls, instance) -> "BitsetUniverse":
        """Pack an :class:`OCTInstance`'s input sets over its universe.

        Rows follow ``instance.sets`` order; ``row_of`` maps sids to rows.
        """
        uni = cls([q.items for q in instance.sets], universe=instance.universe)
        uni.row_of = {q.sid: row for row, q in enumerate(instance.sets)}
        return uni

    def __len__(self) -> int:
        return self.n_sets

    # -- packing -----------------------------------------------------------

    @property
    def matrix(self) -> "np.ndarray":
        """The ``(n_sets, n_words)`` uint64 membership matrix (lazy)."""
        if self._matrix is None:
            m = np.zeros((self.n_sets, self.n_words), dtype=np.uint64)
            if self._cols.size:
                flat = self._rows * self.n_words + (self._cols >> 6)
                bits = np.uint64(1) << (self._cols & 63).astype(np.uint64)
                np.bitwise_or.at(m.reshape(-1), flat, bits)
            self._matrix = m
            get_tracer().count("bitset.words_packed", m.size)
        return self._matrix

    def pack(self, items: Iterable) -> "np.ndarray":
        """Pack an arbitrary subset of the universe into one uint64 row."""
        row = np.zeros(self.n_words, dtype=np.uint64)
        codes = np.array(
            [self.index[item] for item in items], dtype=np.int64
        )
        if codes.size:
            bits = np.uint64(1) << (codes & 63).astype(np.uint64)
            np.bitwise_or.at(row, codes >> 6, bits)
        return row

    def pack_many(self, families: Sequence[Iterable]) -> "np.ndarray":
        """Pack several subsets into a ``(len(families), n_words)`` matrix."""
        out = np.zeros((len(families), self.n_words), dtype=np.uint64)
        for i, items in enumerate(families):
            out[i] = self.pack(items)
        return out

    # -- batched intersections --------------------------------------------

    def intersection_sizes(self, packed: "np.ndarray") -> "np.ndarray":
        """``|set_r & packed|`` for every row ``r``, in one popcount pass."""
        get_tracer().count("bitset.words_touched", self.n_sets * self.n_words)
        return _popcount(self.matrix & packed).sum(-1, dtype=np.int64)

    def rowwise_intersections(
        self, rows: Sequence[int], packed: "np.ndarray"
    ) -> "np.ndarray":
        """``|set_rows[k] & packed[k]|`` elementwise over aligned rows."""
        idx = np.asarray(rows, dtype=np.int64)
        get_tracer().count("bitset.words_touched", idx.size * self.n_words)
        return _popcount(self.matrix[idx] & packed).sum(-1, dtype=np.int64)

    def pairwise_intersections(self, n_jobs: int = 1) -> "np.ndarray":
        """The dense ``n x n`` matrix of pairwise intersection sizes.

        Computed in row blocks (AND + popcount + reduce) so the broadcast
        intermediate stays cache-sized; with ``n_jobs > 1`` the blocks fan
        out over a process pool, the matrix shipped once per worker via
        the pool initializer rather than re-pickled per chunk.
        """
        from repro.utils.parallel import parallel_map

        if self._pairwise is not None:
            get_tracer().count("bitset.pairwise_cache_hits")
            return self._pairwise
        n = self.n_sets
        out = np.zeros((n, n), dtype=np.int64)
        if n == 0:
            self._pairwise = out
            return out
        matrix = self.matrix
        block = max(1, (1 << 22) // max(1, n * self.n_words))
        ranges = [(lo, min(n, lo + block)) for lo in range(0, n, block)]
        blocks = parallel_map(
            _block_intersections,
            ranges,
            n_jobs=n_jobs,
            initializer=_install_shared_matrix,
            initargs=(matrix,),
        )
        for (lo, hi), part in zip(ranges, blocks):
            out[lo:hi] = part
        self._pairwise = out
        return out

    def intersecting_pairs(
        self, item_mask: "np.ndarray | None" = None
    ) -> tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """All pairs ``i < j`` with a nonempty intersection, with sizes.

        Returns ``(ii, jj, counts)`` arrays. Output-sensitive: the work is
        proportional to the number of shared (item, pair) incidences, not
        to ``n^2`` — items are grouped by degree so the pair enumeration
        is a handful of vectorized gathers. ``item_mask`` (bool, per item
        code) optionally restricts the count to a subset of the universe,
        e.g. the branch-bound-1 items of the 2-conflict separate test.
        """
        rows, cols = self._rows, self._cols
        if item_mask is not None:
            keep = item_mask[cols]
            rows, cols = rows[keep], cols[keep]
        empty = np.empty(0, dtype=np.int64)
        if rows.size == 0:
            return empty, empty, empty
        order = np.argsort(cols)
        r, c = rows[order], cols[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(c)) + 1)
        )
        lengths = np.diff(np.concatenate((starts, [c.size])))
        n = self.n_sets
        key_parts = []
        for d in np.unique(lengths):
            d = int(d)
            if d < 2:
                continue
            group_starts = starts[lengths == d]
            # Rows within one item's group arrive in arbitrary order (the
            # sort need not be stable), so orient each pair explicitly.
            block = r[group_starts[:, None] + np.arange(d)]
            iu, ju = np.triu_indices(d, k=1)
            a = block[:, iu].ravel()
            b = block[:, ju].ravel()
            key_parts.append(np.minimum(a, b) * n + np.maximum(a, b))
        if not key_parts:
            return empty, empty, empty
        all_keys = np.concatenate(key_parts)
        if n * n <= 1 << 22:
            # Tiny key space: a dense bincount beats sorting the keys.
            tallies = np.bincount(all_keys, minlength=n * n)
            keys = np.flatnonzero(tallies)
            counts = tallies[keys]
        else:
            keys, counts = np.unique(all_keys, return_counts=True)
        get_tracer().count("bitset.pairs_enumerated", int(keys.size))
        return keys // n, keys % n, counts.astype(np.int64)

    # -- batched score matrices -------------------------------------------

    def pairwise_jaccard(self, n_jobs: int = 1) -> "np.ndarray":
        """Dense Jaccard matrix; two empty sets score 1."""
        inter = self.pairwise_intersections(n_jobs=n_jobs)
        union = self.sizes[:, None] + self.sizes[None, :] - inter
        return np.where(
            union == 0, 1.0, inter / np.where(union == 0, 1, union)
        )

    def pairwise_f1(self, n_jobs: int = 1) -> "np.ndarray":
        """Dense F1 matrix; two empty sets score 1."""
        inter = self.pairwise_intersections(n_jobs=n_jobs)
        denom = self.sizes[:, None] + self.sizes[None, :]
        return np.where(
            denom == 0, 1.0, 2.0 * inter / np.where(denom == 0, 1, denom)
        )

    def pairwise_precision(self, n_jobs: int = 1) -> "np.ndarray":
        """``P[q, c] = |q & c| / |c|``; an empty category scores 0."""
        inter = self.pairwise_intersections(n_jobs=n_jobs)
        c_size = self.sizes[None, :]
        return np.where(
            c_size == 0, 0.0, inter / np.where(c_size == 0, 1, c_size)
        )

    def pairwise_recall(self, n_jobs: int = 1) -> "np.ndarray":
        """``R[q, c] = |q & c| / |q|``; an empty input set scores 1."""
        inter = self.pairwise_intersections(n_jobs=n_jobs)
        q_size = self.sizes[:, None]
        return np.where(
            q_size == 0, 1.0, inter / np.where(q_size == 0, 1, q_size)
        )

    def pairwise_variant_scores(
        self,
        variant: Variant,
        delta: "float | np.ndarray | None" = None,
        n_jobs: int = 1,
    ) -> "np.ndarray":
        """Dense matrix of ``variant_score_from_sizes`` over all pairs.

        Rows play the input set ``q``, columns the category ``C``.
        ``delta`` is the effective threshold: a scalar, or one value per
        row (the per-set-thresholds extension); defaults to the variant's.
        """
        inter = self.pairwise_intersections(n_jobs=n_jobs)
        q_size = self.sizes[:, None]
        c_size = self.sizes[None, :]
        if delta is None:
            delta = variant.delta
        delta = np.asarray(delta, dtype=np.float64)
        if delta.ndim == 1:
            delta = delta[:, None]

        if variant.kind is SimilarityKind.PERFECT_RECALL:
            prec = np.where(
                c_size == 0, 0.0, inter / np.where(c_size == 0, 1, c_size)
            )
            score = np.where(
                inter < q_size,
                0.0,
                np.where(prec >= delta - _SCORE_EPS, 1.0, 0.0),
            )
            # An empty q is trivially recalled; only an empty C has
            # nonzero precision against it.
            empty_q = np.where(c_size == 0, 1.0, 0.0)
            return np.where(q_size == 0, empty_q, score)

        if variant.kind is SimilarityKind.JACCARD:
            sim = self.pairwise_jaccard()
        else:
            sim = self.pairwise_f1()
        score = np.where(sim < delta - _SCORE_EPS, 0.0, sim)
        if variant.mode is ScoreMode.THRESHOLD:
            score = np.where(score > 0.0, 1.0, score)
        return score
