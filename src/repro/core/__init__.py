"""Core OCT model: items, input sets, similarity variants, trees, scoring."""

from repro.core.exceptions import (
    InvalidInstanceError,
    InvalidTreeError,
    InvalidVariantError,
    ReproError,
    SolverError,
)
from repro.core.input_sets import InputSet, Item, OCTInstance, make_instance
from repro.core.scoring import (
    ScoreReport,
    SetScore,
    annotate_matches,
    category_intersections,
    covering_categories,
    score_tree,
    upper_bound,
)
from repro.core.similarity import (
    covers,
    f1,
    jaccard,
    precision,
    raw_similarity,
    recall,
    variant_score,
)
from repro.core.tree import Category, CategoryTree
from repro.core.variants import ScoreMode, SimilarityKind, Variant

__all__ = [
    "Category",
    "CategoryTree",
    "InputSet",
    "InvalidInstanceError",
    "InvalidTreeError",
    "InvalidVariantError",
    "Item",
    "OCTInstance",
    "ReproError",
    "ScoreMode",
    "ScoreReport",
    "SetScore",
    "SimilarityKind",
    "SolverError",
    "Variant",
    "annotate_matches",
    "category_intersections",
    "covering_categories",
    "covers",
    "f1",
    "jaccard",
    "make_instance",
    "precision",
    "raw_similarity",
    "recall",
    "score_tree",
    "upper_bound",
    "variant_score",
]
