"""Input sets and OCT problem instances (paper Section 2.1).

An OCT instance is ``⟨Q, W⟩``: a family of *candidate categories* — item
sets over a finite universe — each with a non-negative weight. Candidate
categories typically come from search-query result sets, the categories
of an existing tree, or taxonomist-curated property sets; the ``source``
field records which, so experiments such as Table 1 can attribute score
contributions per source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.core.exceptions import InvalidInstanceError

Item = Hashable


@dataclass(frozen=True)
class InputSet:
    """One candidate category: an item set with a weight and metadata.

    ``threshold`` overrides the variant's default ``delta`` for this set
    (the paper's non-uniform-thresholds extension); ``None`` means "use
    the default". ``label`` carries the originating query text or category
    name, which the paper uses to hint category names.
    """

    sid: int
    items: frozenset[Item]
    weight: float = 1.0
    threshold: float | None = None
    label: str = ""
    source: str = "query"

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise InvalidInstanceError(
                f"input set {self.sid} has negative weight {self.weight}"
            )
        if not self.items:
            raise InvalidInstanceError(f"input set {self.sid} is empty")
        if self.threshold is not None and not 0.0 < self.threshold <= 1.0:
            raise InvalidInstanceError(
                f"input set {self.sid} has threshold {self.threshold} "
                "outside (0, 1]"
            )

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, item: Item) -> bool:
        return item in self.items


class OCTInstance:
    """An OCT problem instance: input sets plus the item universe.

    The universe defaults to the union of the input sets, but may be given
    explicitly to include items that no candidate category mentions (these
    end up in the miscellaneous category of any solution).

    ``item_bounds`` maps items to the maximum number of branches they may
    appear on (the paper's per-item bound extension); the default bound is
    ``default_bound`` (1 on most platforms, 2 on e.g. eBay with a fee).
    """

    def __init__(
        self,
        sets: Iterable[InputSet],
        universe: Iterable[Item] | None = None,
        item_bounds: Mapping[Item, int] | None = None,
        default_bound: int = 1,
    ) -> None:
        self.sets: list[InputSet] = list(sets)
        seen_ids = set()
        for q in self.sets:
            if q.sid in seen_ids:
                raise InvalidInstanceError(f"duplicate input-set id {q.sid}")
            seen_ids.add(q.sid)
        union: set[Item] = set()
        for q in self.sets:
            union |= q.items
        if universe is None:
            self.universe: frozenset[Item] = frozenset(union)
        else:
            self.universe = frozenset(universe)
            if not union <= self.universe:
                raise InvalidInstanceError(
                    "input sets mention items outside the given universe"
                )
        if default_bound < 1:
            raise InvalidInstanceError("default_bound must be at least 1")
        self.default_bound = default_bound
        self._item_bounds: dict[Item, int] = dict(item_bounds or {})
        for item, bound in self._item_bounds.items():
            if bound < 1:
                raise InvalidInstanceError(
                    f"item {item!r} has bound {bound} < 1"
                )
        self._by_id: dict[int, InputSet] = {q.sid: q for q in self.sets}

    # -- basic accessors --------------------------------------------------

    def __len__(self) -> int:
        return len(self.sets)

    def __iter__(self):
        return iter(self.sets)

    def get(self, sid: int) -> InputSet:
        return self._by_id[sid]

    def bound(self, item: Item) -> int:
        """Branch bound for one item."""
        return self._item_bounds.get(item, self.default_bound)

    def uniform_bound(self) -> int | None:
        """The single branch bound shared by every item, or ``None``.

        Lets hot paths skip per-item bound lookups (e.g. the bitset
        kernel reuses full intersection counts for the bound-1 shared
        counts when the bound is uniformly 1).
        """
        if all(b == self.default_bound for b in self._item_bounds.values()):
            return self.default_bound
        return None

    @property
    def total_weight(self) -> float:
        """Sum of all weights — the paper's normalization denominator."""
        return sum(q.weight for q in self.sets)

    def effective_threshold(self, q: InputSet, default_delta: float) -> float:
        """The threshold in force for one input set."""
        return default_delta if q.threshold is None else q.threshold

    # -- derived structures used throughout the algorithms ----------------

    def sets_containing(self) -> dict[Item, list[InputSet]]:
        """Index from each item to the input sets containing it."""
        index: dict[Item, list[InputSet]] = {}
        for q in self.sets:
            for item in q.items:
                index.setdefault(item, []).append(q)
        return index

    def restricted_to(self, sids: Iterable[int]) -> "OCTInstance":
        """A sub-instance over a subset of the input sets (same universe)."""
        wanted = set(sids)
        return OCTInstance(
            [q for q in self.sets if q.sid in wanted],
            universe=self.universe,
            item_bounds=self._item_bounds,
            default_bound=self.default_bound,
        )

    def with_extra_sets(self, extra: Iterable[InputSet]) -> "OCTInstance":
        """A new instance with additional candidate categories appended.

        Used for continual conservative updates: the categories of the
        existing tree are added as input sets with tunable weights.
        """
        extra = list(extra)
        universe = set(self.universe)
        for q in extra:
            universe |= q.items
        return OCTInstance(
            self.sets + extra,
            universe=universe,
            item_bounds=self._item_bounds,
            default_bound=self.default_bound,
        )


def make_instance(
    raw_sets: Iterable[Iterable[Item]],
    weights: Iterable[float] | None = None,
    labels: Iterable[str] | None = None,
    **kwargs,
) -> OCTInstance:
    """Convenience constructor from plain collections.

    >>> inst = make_instance([{"a", "b"}, {"b", "c"}], weights=[2.0, 1.0])
    >>> len(inst)
    2
    """
    raw = [frozenset(s) for s in raw_sets]
    w = list(weights) if weights is not None else [1.0] * len(raw)
    lab = list(labels) if labels is not None else [""] * len(raw)
    if len(w) != len(raw) or len(lab) != len(raw):
        raise InvalidInstanceError("weights/labels length mismatch")
    sets = [
        InputSet(sid=i, items=items, weight=wi, label=li)
        for i, (items, wi, li) in enumerate(zip(raw, w, lab))
    ]
    return OCTInstance(sets, **kwargs)
