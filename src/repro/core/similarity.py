"""Set-similarity functions and variant scoring (paper Section 2.2).

All functions accept plain ``set``/``frozenset`` arguments. Size-based
forms (suffixed ``_from_sizes``) are provided for hot paths where the
caller already knows ``|q|``, ``|C|``, and ``|q ∩ C|``.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet

from repro.core.variants import ScoreMode, SimilarityKind, Variant

ItemSet = AbstractSet


def jaccard(a: ItemSet, b: ItemSet) -> float:
    """Jaccard index ``|a ∩ b| / |a ∪ b|``; two empty sets score 1.

    >>> jaccard({"a", "b"}, {"b", "c"})
    0.3333333333333333
    >>> jaccard(set(), set())
    1.0
    """
    if not a and not b:
        return 1.0
    inter = len(a & b)
    return inter / (len(a) + len(b) - inter)


def precision(q: ItemSet, c: ItemSet) -> float:
    """Fraction of the category's items that belong to the input set.

    An empty category has no correct item, so its precision is 0:

    >>> precision({"a", "b"}, set())
    0.0
    >>> precision({"a", "b"}, {"a", "x"})
    0.5
    """
    if not c:
        return 0.0
    return len(q & c) / len(c)


def recall(q: ItemSet, c: ItemSet) -> float:
    """Fraction of the input set's items captured by the category.

    An empty input set is trivially recalled by any category:

    >>> recall(set(), {"a", "b"})
    1.0
    >>> recall({"a", "b"}, {"a", "x"})
    0.5
    """
    if not q:
        return 1.0
    return len(q & c) / len(q)


def f1(q: ItemSet, c: ItemSet) -> float:
    """Harmonic mean of precision and recall.

    Two empty sets score 1 (consistent with :func:`jaccard`):

    >>> f1(set(), set())
    1.0
    >>> f1({"a", "b"}, {"a"})
    0.6666666666666666
    """
    inter = len(q & c)
    denom = len(q) + len(c)
    if denom == 0:
        return 1.0
    return 2.0 * inter / denom


def jaccard_from_sizes(q_size: int, c_size: int, inter: int) -> float:
    if q_size == 0 and c_size == 0:
        return 1.0
    return inter / (q_size + c_size - inter)


def f1_from_sizes(q_size: int, c_size: int, inter: int) -> float:
    denom = q_size + c_size
    if denom == 0:
        return 1.0
    return 2.0 * inter / denom


def raw_similarity(kind: SimilarityKind, q: ItemSet, c: ItemSet) -> float:
    """The unthresholded similarity a variant is built on.

    For Perfect-Recall the paper's CCT embeddings use the average of
    precision and recall, which is also the natural graded counterpart of
    the binary PR function, so that is what we return here.
    """
    if kind is SimilarityKind.JACCARD:
        return jaccard(q, c)
    if kind is SimilarityKind.F1:
        return f1(q, c)
    return (precision(q, c) + recall(q, c)) / 2.0


def raw_similarity_from_sizes(
    kind: SimilarityKind, q_size: int, c_size: int, inter: int
) -> float:
    if kind is SimilarityKind.JACCARD:
        return jaccard_from_sizes(q_size, c_size, inter)
    if kind is SimilarityKind.F1:
        return f1_from_sizes(q_size, c_size, inter)
    prec = inter / c_size if c_size else 0.0
    rec = inter / q_size if q_size else 1.0
    return (prec + rec) / 2.0


def variant_score_from_sizes(
    variant: Variant, q_size: int, c_size: int, inter: int, delta: float
) -> float:
    """Score of a category of size ``c_size`` against a set of size ``q_size``.

    ``delta`` is the effective threshold for this particular input set
    (per-set thresholds override the variant default).
    """
    if variant.kind is SimilarityKind.PERFECT_RECALL:
        if q_size == 0:
            # An empty set is trivially recalled; only an empty category
            # has nonzero precision against it.
            return 1.0 if c_size == 0 else 0.0
        if inter < q_size:  # recall below 1
            return 0.0
        prec = inter / c_size if c_size else 0.0
        return 1.0 if prec >= delta - 1e-12 else 0.0

    sim = raw_similarity_from_sizes(variant.kind, q_size, c_size, inter)
    if sim < delta - 1e-12:
        return 0.0
    return 1.0 if variant.mode is ScoreMode.THRESHOLD else sim


def variant_score(
    variant: Variant, q: ItemSet, c: ItemSet, delta: float | None = None
) -> float:
    """Score of a category ``c`` against an input set ``q`` under a variant."""
    effective = variant.delta if delta is None else delta
    return variant_score_from_sizes(
        variant, len(q), len(c), len(q & c), effective
    )


def covers(
    variant: Variant, q: ItemSet, c: ItemSet, delta: float | None = None
) -> bool:
    """True when ``c`` covers ``q``: the similarity reaches the threshold."""
    return variant_score(variant, q, c, delta) > 0.0
