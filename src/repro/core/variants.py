"""OCT problem variants: similarity kinds, score modes, and thresholds.

The paper (Section 2.2) studies variations of the Jaccard index and the
F1 score, each in a *cutoff* form (the raw similarity, rounded down to 0
below the threshold ``delta``) and a *threshold* form (binary: 1 when the
similarity reaches ``delta``), plus the binary *Perfect-Recall* function
(1 when recall is 1 and precision is at least ``delta``). At ``delta = 1``
every variant converges to the *Exact* variant, where only an identical
category scores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.exceptions import InvalidVariantError


class SimilarityKind(enum.Enum):
    """The base set-similarity measure a variant is built on."""

    JACCARD = "jaccard"
    F1 = "f1"
    PERFECT_RECALL = "perfect_recall"


class ScoreMode(enum.Enum):
    """How a variant maps the raw similarity to a score.

    ``CUTOFF`` keeps the raw similarity when it reaches the threshold;
    ``THRESHOLD`` rounds it up to 1. Perfect-Recall is inherently binary
    and always uses ``THRESHOLD``.
    """

    CUTOFF = "cutoff"
    THRESHOLD = "threshold"


@dataclass(frozen=True)
class Variant:
    """A fully-specified OCT variant: ``OCT(S)`` in the paper's notation.

    ``delta`` is the default threshold; individual input sets may override
    it (the paper's non-uniform-thresholds extension).
    """

    kind: SimilarityKind
    mode: ScoreMode
    delta: float

    def __post_init__(self) -> None:
        if not 0.0 < self.delta <= 1.0:
            raise InvalidVariantError(
                f"threshold delta must be in (0, 1], got {self.delta}"
            )
        if (
            self.kind is SimilarityKind.PERFECT_RECALL
            and self.mode is not ScoreMode.THRESHOLD
        ):
            raise InvalidVariantError(
                "the Perfect-Recall variant is binary; use ScoreMode.THRESHOLD"
            )

    # -- constructors for the six variants evaluated in the paper --------

    @staticmethod
    def cutoff_jaccard(delta: float) -> "Variant":
        return Variant(SimilarityKind.JACCARD, ScoreMode.CUTOFF, delta)

    @staticmethod
    def threshold_jaccard(delta: float) -> "Variant":
        return Variant(SimilarityKind.JACCARD, ScoreMode.THRESHOLD, delta)

    @staticmethod
    def cutoff_f1(delta: float) -> "Variant":
        return Variant(SimilarityKind.F1, ScoreMode.CUTOFF, delta)

    @staticmethod
    def threshold_f1(delta: float) -> "Variant":
        return Variant(SimilarityKind.F1, ScoreMode.THRESHOLD, delta)

    @staticmethod
    def perfect_recall(delta: float) -> "Variant":
        return Variant(SimilarityKind.PERFECT_RECALL, ScoreMode.THRESHOLD, delta)

    @staticmethod
    def exact() -> "Variant":
        """The Exact variant: all similarity functions converge at delta = 1."""
        return Variant(SimilarityKind.JACCARD, ScoreMode.THRESHOLD, 1.0)

    # -- properties -------------------------------------------------------

    @property
    def is_binary(self) -> bool:
        """True when covered sets always score exactly 1."""
        return self.mode is ScoreMode.THRESHOLD

    @property
    def is_exact(self) -> bool:
        """True when only an identical category can cover a set."""
        return self.delta == 1.0

    @property
    def is_perfect_recall(self) -> bool:
        return self.kind is SimilarityKind.PERFECT_RECALL

    def with_delta(self, delta: float) -> "Variant":
        """A copy of this variant with a different default threshold."""
        return Variant(self.kind, self.mode, delta)

    def describe(self) -> str:
        """Human-readable name matching the paper's terminology."""
        if self.is_exact:
            return "Exact"
        if self.kind is SimilarityKind.PERFECT_RECALL:
            return f"Perfect-Recall(delta={self.delta:g})"
        return f"{self.mode.value} {self.kind.value}(delta={self.delta:g})"
