"""Exception types used across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidTreeError(ReproError):
    """Raised when a category tree violates a validity requirement."""


class InvalidInstanceError(ReproError):
    """Raised when an OCT instance is malformed (e.g. bad weights)."""


class InvalidVariantError(ReproError):
    """Raised when a similarity-variant specification is malformed."""


class SolverError(ReproError):
    """Raised when an optimization subroutine fails or is misconfigured."""
