"""Tree scoring (paper Section 2.1, "Objective").

The score of a tree over one input set is the best similarity score any
category achieves against it; the overall score is the weight-weighted
sum over all input sets. Scores are normalized by the total input weight
for reporting, as in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.input_sets import OCTInstance
from repro.core.similarity import variant_score_from_sizes
from repro.core.tree import CategoryTree
from repro.core.variants import Variant


@dataclass(frozen=True)
class SetScore:
    """Evaluation of a single input set against a tree."""

    sid: int
    score: float
    weight: float
    best_cid: int | None
    best_precision: float
    covered: bool


@dataclass(frozen=True)
class ScoreReport:
    """Full evaluation of a tree over an instance."""

    total: float
    normalized: float
    per_set: dict[int, SetScore]

    @property
    def covered_count(self) -> int:
        return sum(1 for s in self.per_set.values() if s.covered)

    @property
    def covered_weight(self) -> float:
        return sum(s.weight for s in self.per_set.values() if s.covered)

    def score_by_source(self, instance: OCTInstance) -> dict[str, float]:
        """Raw score aggregated by input-set ``source`` (Table 1 support)."""
        totals: dict[str, float] = {}
        for q in instance:
            entry = self.per_set[q.sid]
            totals[q.source] = (
                totals.get(q.source, 0.0) + entry.weight * entry.score
            )
        return totals


def category_intersections(
    tree: CategoryTree, instance: OCTInstance
) -> dict[int, dict[int, int]]:
    """``{sid: {cid: |q ∩ C|}}`` via an item -> category inverted index.

    Only nonzero intersections are materialized, which keeps scoring
    near-linear on the sparse instances the paper targets. Public
    because :mod:`repro.shaping` uses the same table to keep its
    incremental score bookkeeping bit-identical to :func:`score_tree`.
    """
    item_to_cids: dict = {}
    for cat in tree.categories():
        for item in cat.items:
            item_to_cids.setdefault(item, []).append(cat.cid)
    inter: dict[int, dict[int, int]] = {}
    for q in instance:
        counts: dict[int, int] = {}
        for item in q.items:
            for cid in item_to_cids.get(item, ()):
                counts[cid] = counts.get(cid, 0) + 1
        inter[q.sid] = counts
    return inter


# Backwards-compatible alias (pre-shaping internal name).
_category_intersections = category_intersections


def score_tree(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> ScoreReport:
    """Evaluate a tree over an OCT instance under a similarity variant.

    Per-set thresholds on the input sets override the variant's default
    ``delta``. Ties between categories achieving the same score are broken
    towards higher precision (fewer extraneous items) — the rule the
    paper's condensing step uses to pick the retained cover — and then
    towards the deeper category, so a cover is never attributed to the
    root (whose contents shift when the miscellaneous category is added)
    when an equally good specific category exists.
    """
    sizes: dict[int, int] = {
        cat.cid: len(cat.items) for cat in tree.categories()
    }
    depths: dict[int, int] = {
        cat.cid: cat.depth for cat in tree.categories()
    }
    inter = _category_intersections(tree, instance)
    per_set: dict[int, SetScore] = {}
    total = 0.0
    for q in instance:
        delta = instance.effective_threshold(q, variant.delta)
        best_score = 0.0
        best_cid: int | None = None
        best_precision = 0.0
        best_depth = -1
        for cid, common in inter[q.sid].items():
            c_size = sizes[cid]
            s = variant_score_from_sizes(variant, len(q), c_size, common, delta)
            if s <= 0.0:
                continue
            prec = common / c_size if c_size else 0.0
            if s > best_score or (
                s == best_score
                and (prec, depths[cid]) > (best_precision, best_depth)
            ):
                best_score = s
                best_cid = cid
                best_precision = prec
                best_depth = depths[cid]
        per_set[q.sid] = SetScore(
            sid=q.sid,
            score=best_score,
            weight=q.weight,
            best_cid=best_cid,
            best_precision=best_precision,
            covered=best_score > 0.0,
        )
        total += q.weight * best_score
    denominator = instance.total_weight
    normalized = total / denominator if denominator > 0 else 0.0
    return ScoreReport(total=total, normalized=normalized, per_set=per_set)


def covering_categories(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> dict[int, list[int]]:
    """``{cid: [sids covered]}`` attributing each set to its best category."""
    report = score_tree(tree, instance, variant)
    result: dict[int, list[int]] = {}
    for sid, entry in report.per_set.items():
        if entry.covered and entry.best_cid is not None:
            result.setdefault(entry.best_cid, []).append(sid)
    return result


def annotate_matches(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> None:
    """Stamp ``matched_sids`` on every category from a fresh evaluation."""
    for cat in tree.categories():
        cat.matched_sids = []
    by_cid = {cat.cid: cat for cat in tree.categories()}
    for cid, sids in covering_categories(tree, instance, variant).items():
        by_cid[cid].matched_sids = sorted(sids)


def upper_bound(instance: OCTInstance) -> float:
    """The loose score upper bound used for normalization: total weight."""
    return instance.total_weight
