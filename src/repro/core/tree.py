"""Category trees (paper Section 2.1, "Solution space").

A valid category tree is a rooted tree whose nodes carry item sets, where

1. every non-leaf category contains the union of its children's items
   (and possibly more), so categories shrink from root to leaves, and
2. every item belongs to at most ``bound(item)`` branches: the categories
   containing an item form at most that many root-to-node chains
   (``bound = 1`` everywhere on most platforms).

Trees are mutable during construction; :meth:`CategoryTree.validate`
checks both requirements.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator

from repro.core.exceptions import InvalidTreeError

Item = Hashable


class Category:
    """One tree node: a named item set with parent/child links.

    ``matched_sids`` records which input sets this category was built to
    cover — the paper marks each category with its matched sets so their
    query/category labels hint at a name.
    """

    __slots__ = ("cid", "items", "parent", "children", "label", "matched_sids")

    def __init__(
        self,
        cid: int,
        items: Iterable[Item] = (),
        parent: "Category | None" = None,
        label: str = "",
    ) -> None:
        self.cid = cid
        self.items: set[Item] = set(items)
        self.parent = parent
        self.children: list["Category"] = []
        self.label = label
        self.matched_sids: list[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.label or f"C{self.cid}"
        return f"<Category {name}: {len(self.items)} items>"

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        """Number of edges from the root (root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def ancestors(self) -> Iterator["Category"]:
        """Strict ancestors, nearest first (ends at the root)."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_from_root(self) -> list["Category"]:
        """Root-to-self path, inclusive."""
        path = [self]
        path.extend(self.ancestors())
        path.reverse()
        return path

    def descendants(self) -> Iterator["Category"]:
        """Strict descendants in pre-order."""
        stack = list(self.children)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def subtree(self) -> Iterator["Category"]:
        """Self plus all descendants in pre-order."""
        yield self
        yield from self.descendants()

    def leaves_below(self) -> list["Category"]:
        """Leaf categories of this subtree (self if it is a leaf)."""
        return [c for c in self.subtree() if c.is_leaf]


class CategoryTree:
    """A mutable rooted category tree with validity checking."""

    def __init__(self, root_label: str = "root") -> None:
        self._next_cid = 0
        self.root = Category(self._take_cid(), label=root_label)

    def _take_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        return cid

    # -- construction ------------------------------------------------------

    def add_category(
        self,
        items: Iterable[Item] = (),
        parent: Category | None = None,
        label: str = "",
    ) -> Category:
        """Create a category under ``parent`` (default: the root).

        The new items are propagated to all ancestors so requirement (1)
        keeps holding.
        """
        parent = parent if parent is not None else self.root
        cat = Category(self._take_cid(), items, parent, label)
        parent.children.append(cat)
        self._propagate_up(parent, cat.items)
        return cat

    def insert_parent(
        self, children: list[Category], label: str = ""
    ) -> Category:
        """Insert a new category as the parent of existing sibling nodes.

        All ``children`` must currently share the same parent; the new
        node takes their place and contains the union of their items.
        This implements the paper's intermediate-category operation.
        """
        if not children:
            raise InvalidTreeError("insert_parent needs at least one child")
        parent = children[0].parent
        if parent is None or any(c.parent is not parent for c in children):
            raise InvalidTreeError(
                "insert_parent requires siblings with a common parent"
            )
        union: set[Item] = set()
        for child in children:
            union |= child.items
        node = Category(self._take_cid(), union, parent, label)
        for child in children:
            parent.children.remove(child)
            child.parent = node
            node.children.append(child)
        parent.children.append(node)
        return node

    def remove_category(self, cat: Category) -> None:
        """Remove a non-root category, splicing its children to its parent."""
        if cat.is_root:
            raise InvalidTreeError("cannot remove the root category")
        parent = cat.parent
        assert parent is not None
        parent.children.remove(cat)
        for child in cat.children:
            child.parent = parent
            parent.children.append(child)
        cat.children = []
        cat.parent = None

    def assign_item(self, cat: Category, item: Item) -> None:
        """Add an item to a category and to all its ancestors."""
        cat.items.add(item)
        self._propagate_up(cat.parent, (item,))

    def remove_item(self, cat: Category, item: Item) -> None:
        """Remove an item from a category and its whole subtree."""
        for node in cat.subtree():
            node.items.discard(item)

    @staticmethod
    def _propagate_up(start: Category | None, items: Iterable[Item]) -> None:
        items = set(items)
        node = start
        while node is not None and not items <= node.items:
            node.items |= items
            node = node.parent

    # -- traversal ----------------------------------------------------------

    def categories(self) -> Iterator[Category]:
        """All categories in pre-order, starting from the root."""
        yield from self.root.subtree()

    def non_root_categories(self) -> Iterator[Category]:
        yield from self.root.descendants()

    def leaves(self) -> list[Category]:
        return self.root.leaves_below()

    def __len__(self) -> int:
        return sum(1 for _ in self.categories())

    def find(self, cid: int) -> Category:
        for cat in self.categories():
            if cat.cid == cid:
                return cat
        raise KeyError(f"no category with cid {cid}")

    # -- analysis -----------------------------------------------------------

    def minimal_categories(self, item: Item) -> list[Category]:
        """The most-specific categories containing an item.

        These are the categories containing the item none of whose
        children contains it; their count is the number of branches the
        item occupies, which requirement (2) bounds.
        """
        result = []
        for cat in self.categories():
            if item in cat.items and not any(
                item in child.items for child in cat.children
            ):
                result.append(cat)
        return result

    def item_branch_counts(self) -> dict[Item, int]:
        """Number of branches each item occupies (one pass over the tree)."""
        counts: dict[Item, int] = {}
        for cat in self.categories():
            covered_by_children: set[Item] = set()
            for child in cat.children:
                covered_by_children |= child.items
            for item in cat.items:
                if item not in covered_by_children:
                    counts[item] = counts.get(item, 0) + 1
        return counts

    def validate(
        self,
        universe: Iterable[Item] | None = None,
        bound: Callable[[Item], int] | int = 1,
    ) -> None:
        """Raise :class:`InvalidTreeError` on any validity violation.

        ``bound`` is either a uniform integer bound or a callable mapping
        items to their per-item branch bound.
        """
        bound_fn = bound if callable(bound) else (lambda _item: bound)
        for cat in self.categories():
            for child in cat.children:
                if not child.items <= cat.items:
                    raise InvalidTreeError(
                        f"category {cat.cid} misses items of child "
                        f"{child.cid}: {sorted(map(repr, child.items - cat.items))[:5]}"
                    )
        for item, count in self.item_branch_counts().items():
            limit = bound_fn(item)
            if count > limit:
                raise InvalidTreeError(
                    f"item {item!r} occupies {count} branches, bound {limit}"
                )
        if universe is not None:
            missing = set(universe) - self.root.items
            if missing:
                raise InvalidTreeError(
                    f"root is missing {len(missing)} universe items"
                )

    def copy(self) -> "CategoryTree":
        """Structure-preserving deep copy."""
        clone = CategoryTree(root_label=self.root.label)
        clone.root.items = set(self.root.items)
        clone.root.matched_sids = list(self.root.matched_sids)
        clone._next_cid = self._next_cid

        def rec(src: Category, dst: Category) -> None:
            for child in src.children:
                mirrored = Category(child.cid, child.items, dst, child.label)
                mirrored.matched_sids = list(child.matched_sids)
                dst.children.append(mirrored)
                rec(child, mirrored)

        rec(self.root, clone.root)
        return clone

    def to_text(self, max_items: int = 8) -> str:
        """Indented rendering for examples and debugging."""
        lines: list[str] = []

        def rec(cat: Category, indent: int) -> None:
            shown = sorted(map(str, cat.items))
            preview = ", ".join(shown[:max_items])
            if len(shown) > max_items:
                preview += ", …"
            name = cat.label or f"C{cat.cid}"
            lines.append(
                f"{'  ' * indent}{name} ({len(cat.items)} items) [{preview}]"
            )
            for child in sorted(cat.children, key=lambda c: c.cid):
                rec(child, indent + 1)

        rec(self.root, 0)
        return "\n".join(lines)
