"""Agglomerative (hierarchical) clustering with Lance–Williams updates.

CCT (paper Section 4) merges the two closest clusters repeatedly,
measuring inter-cluster distance as the average of all pairwise
distances (UPGMA / average linkage); single and complete linkage are
provided for experimentation.

Two engines share the Lance–Williams update and produce the same
dendrogram topology:

* ``"nn-chain"`` (default) — the nearest-neighbor-chain algorithm:
  follow nearest-neighbor links until a mutually-nearest pair appears,
  merge it, and continue from the remaining chain. All three linkages
  here are *reducible*, so a merge never invalidates the chain behind
  it and every cluster is visited O(1) amortized times — worst-case
  O(n²) time on the dense distance matrix, with no per-step global
  scan. Merges are discovered out of height order, so they are
  stably sorted by height and relabeled through a union-find into the
  :class:`Dendrogram` node-id convention (the same scheme SciPy uses).
* ``"legacy"`` — the original greedy global-minimum loop with cached
  per-row minima (expected O(n²), worst-case cubic). Kept as the
  differential oracle for equivalence tests.

The engines can order *tied* merges differently (and accumulate
Lance–Williams averages in different orders, so heights match only up
to floating-point tolerance), but on tie-free inputs the dendrograms
are topologically identical.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.distance import distance_matrix

_LINKAGES = ("average", "single", "complete")
_ENGINES = ("nn-chain", "legacy")


def _lance_williams(
    linkage: str,
    d_ki: np.ndarray,
    d_kj: np.ndarray,
    size_i: int,
    size_j: int,
) -> np.ndarray:
    """Distance from every cluster k to the merge of clusters i and j."""
    if linkage == "average":
        total = size_i + size_j
        return (size_i * d_ki + size_j * d_kj) / total
    if linkage == "single":
        return np.minimum(d_ki, d_kj)
    return np.maximum(d_ki, d_kj)  # complete


def agglomerative_clustering(
    vectors: np.ndarray,
    linkage: str = "average",
    metric: str = "euclidean",
    precomputed: np.ndarray | None = None,
    engine: str = "nn-chain",
) -> Dendrogram:
    """Cluster row vectors into a dendrogram.

    Pass ``precomputed`` to supply a ready distance matrix (``metric`` is
    then ignored). Ties in the minimum distance break deterministically:
    both engines prefer the lowest-index candidate, so on the classic
    equidistant chain the left pair merges first and the dendrogram is
    left-leaning:

    >>> points = np.array([[0.0], [1.0], [2.0]])   # d(0,1) == d(1,2)
    >>> d = agglomerative_clustering(points)
    >>> [(m.left, m.right, m.node_id) for m in d.merges]
    [(0, 1, 3), (2, 3, 4)]
    >>> legacy = agglomerative_clustering(points, engine="legacy")
    >>> [(int(m.left), int(m.right)) for m in legacy.merges]
    [(0, 1), (2, 3)]
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if precomputed is not None:
        dist = np.array(precomputed, dtype=np.float64)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError("precomputed distance matrix must be square")
    else:
        x = np.asarray(vectors, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("vectors must be a 2-D array")
        dist = distance_matrix(x, metric)
    n = dist.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero observations")
    if n == 1:
        return Dendrogram(n_leaves=1, merges=[])
    if engine == "nn-chain":
        return _cluster_nn_chain(dist, linkage)
    return _cluster_greedy(dist, linkage)


def _cluster_nn_chain(dist: np.ndarray, linkage: str) -> Dendrogram:
    """Nearest-neighbor-chain agglomeration over a dense matrix."""
    n = dist.shape[0]
    inf = np.inf
    work = dist.copy()
    np.fill_diagonal(work, inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)

    # Raw merges in chain-discovery order: (rep_a, rep_b, height) where
    # reps are matrix slots; the merged cluster keeps living in rep_b.
    raw: list[tuple[int, int, float]] = []
    chain = np.empty(n, dtype=np.int64)
    chain_len = 0
    next_start = 0  # lowest slot that might still be active

    for _step in range(n - 1):
        if chain_len == 0:
            while not active[next_start]:
                next_start += 1
            chain[0] = next_start
            chain_len = 1
        while True:
            x = int(chain[chain_len - 1])
            # Nearest active neighbor of x, preferring the previous
            # chain element on ties so a tied mutual pair terminates
            # the walk instead of oscillating.
            if chain_len > 1:
                y = int(chain[chain_len - 2])
                d_min = work[x, y]
            else:
                y = -1
                d_min = inf
            row = np.where(active, work[x], inf)
            k = int(row.argmin())
            if row[k] < d_min:
                y, d_min = k, row[k]
            if chain_len > 1 and y == chain[chain_len - 2]:
                break  # x and y are mutually nearest: merge them
            chain[chain_len] = y
            chain_len += 1
        chain_len -= 2
        raw.append((x, y, float(d_min)))

        # Lance–Williams merge of x into y; retire slot x. Reducibility
        # of the three linkages guarantees the surviving chain prefix is
        # still a valid nearest-neighbor chain.
        new_row = _lance_williams(
            linkage, work[y], work[x], int(sizes[y]), int(sizes[x])
        )
        work[y, :] = new_row
        work[:, y] = new_row
        work[y, y] = inf
        active[x] = False
        work[x, :] = inf
        work[:, x] = inf
        sizes[y] += sizes[x]

    # Chain discovery finds merges out of height order; a stable sort by
    # height plus union-find relabeling recovers the bottom-up node-id
    # convention (SciPy's ``label`` step). Stability keeps dependent
    # tied merges in a valid (children-first) order.
    order = sorted(range(len(raw)), key=lambda t: raw[t][2])
    parent = list(range(n))
    node_at = list(range(n))

    def find(a: int) -> int:
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:
            parent[a], a = root, parent[a]
        return root

    merges: list[Merge] = []
    for t, idx in enumerate(order):
        a, b, height = raw[idx]
        ra, rb = find(a), find(b)
        left, right = sorted((node_at[ra], node_at[rb]))
        parent[rb] = ra
        node_at[ra] = n + t
        merges.append(Merge(left=left, right=right, height=height, node_id=n + t))
    return Dendrogram(n_leaves=n, merges=merges)


def _cluster_greedy(dist: np.ndarray, linkage: str) -> Dendrogram:
    """Greedy global-minimum agglomeration (the legacy engine)."""
    n = dist.shape[0]
    inf = np.inf
    work = dist.copy()
    np.fill_diagonal(work, inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    node_of = np.arange(n)  # dendrogram node id currently held by each slot
    row_min = work.min(axis=1)
    row_arg = work.argmin(axis=1)

    merges: list[Merge] = []
    next_node = n
    for _step in range(n - 1):
        masked = np.where(active, row_min, inf)
        i = int(masked.argmin())
        j = int(row_arg[i])
        if not active[j] or work[i, j] != row_min[i]:
            # Stale cache: recompute this row properly.
            row = np.where(active, work[i], inf)
            row[i] = inf
            row_min[i] = row.min()
            row_arg[i] = int(row.argmin())
            j = int(row_arg[i])
        height = float(work[i, j])

        left, right = sorted((node_of[i], node_of[j]))
        merges.append(Merge(left=left, right=right, height=height, node_id=next_node))

        # Merge j into slot i via Lance–Williams; retire slot j.
        new_row = _lance_williams(linkage, work[i], work[j], int(sizes[i]), int(sizes[j]))
        work[i, :] = new_row
        work[:, i] = new_row
        work[i, i] = inf
        active[j] = False
        work[j, :] = inf
        work[:, j] = inf
        sizes[i] += sizes[j]
        node_of[i] = next_node
        next_node += 1

        # Refresh cached minima: row i fully, others only if stale.
        row = np.where(active, work[i], inf)
        row[i] = inf
        row_min[i] = row.min()
        row_arg[i] = int(row.argmin())
        for k in np.nonzero(active)[0]:
            if k == i:
                continue
            if row_arg[k] == j or row_arg[k] == i:
                krow = np.where(active, work[k], inf)
                krow[k] = inf
                row_min[k] = krow.min()
                row_arg[k] = int(krow.argmin())
            elif work[k, i] < row_min[k]:
                row_min[k] = work[k, i]
                row_arg[k] = i
    return Dendrogram(n_leaves=n, merges=merges)
