"""Agglomerative (hierarchical) clustering with Lance–Williams updates.

CCT (paper Section 4) merges the two closest clusters repeatedly,
measuring inter-cluster distance as the average of all pairwise
distances (UPGMA / average linkage); single and complete linkage are
provided for experimentation. The implementation maintains a dense
distance matrix with cached per-row minima, giving the expected
O(n^2) behaviour on the instance sizes the library targets.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.distance import distance_matrix

_LINKAGES = ("average", "single", "complete")


def _lance_williams(
    linkage: str,
    d_ki: np.ndarray,
    d_kj: np.ndarray,
    size_i: int,
    size_j: int,
) -> np.ndarray:
    """Distance from every cluster k to the merge of clusters i and j."""
    if linkage == "average":
        total = size_i + size_j
        return (size_i * d_ki + size_j * d_kj) / total
    if linkage == "single":
        return np.minimum(d_ki, d_kj)
    return np.maximum(d_ki, d_kj)  # complete


def agglomerative_clustering(
    vectors: np.ndarray,
    linkage: str = "average",
    metric: str = "euclidean",
    precomputed: np.ndarray | None = None,
) -> Dendrogram:
    """Cluster row vectors into a dendrogram.

    Pass ``precomputed`` to supply a ready distance matrix (``metric`` is
    then ignored). Ties in the minimum distance break towards the
    lowest-index pair, keeping results deterministic.
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
    if precomputed is not None:
        dist = np.array(precomputed, dtype=np.float64)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError("precomputed distance matrix must be square")
    else:
        x = np.asarray(vectors, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("vectors must be a 2-D array")
        dist = distance_matrix(x, metric)
    n = dist.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero observations")
    if n == 1:
        return Dendrogram(n_leaves=1, merges=[])

    inf = np.inf
    work = dist.copy()
    np.fill_diagonal(work, inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    node_of = np.arange(n)  # dendrogram node id currently held by each slot
    row_min = work.min(axis=1)
    row_arg = work.argmin(axis=1)

    merges: list[Merge] = []
    next_node = n
    for _step in range(n - 1):
        masked = np.where(active, row_min, inf)
        i = int(masked.argmin())
        j = int(row_arg[i])
        if not active[j] or work[i, j] != row_min[i]:
            # Stale cache: recompute this row properly.
            row = np.where(active, work[i], inf)
            row[i] = inf
            row_min[i] = row.min()
            row_arg[i] = int(row.argmin())
            j = int(row_arg[i])
        height = float(work[i, j])

        left, right = sorted((node_of[i], node_of[j]))
        merges.append(Merge(left=left, right=right, height=height, node_id=next_node))

        # Merge j into slot i via Lance–Williams; retire slot j.
        new_row = _lance_williams(linkage, work[i], work[j], int(sizes[i]), int(sizes[j]))
        work[i, :] = new_row
        work[:, i] = new_row
        work[i, i] = inf
        active[j] = False
        work[j, :] = inf
        work[:, j] = inf
        sizes[i] += sizes[j]
        node_of[i] = next_node
        next_node += 1

        # Refresh cached minima: row i fully, others only if stale.
        row = np.where(active, work[i], inf)
        row[i] = inf
        row_min[i] = row.min()
        row_arg[i] = int(row.argmin())
        for k in np.nonzero(active)[0]:
            if k == i:
                continue
            if row_arg[k] == j or row_arg[k] == i:
                krow = np.where(active, work[k], inf)
                krow[k] = inf
                row_min[k] = krow.min()
                row_arg[k] = int(krow.argmin())
            elif work[k, i] < row_min[k]:
                row_min[k] = work[k, i]
                row_arg[k] = i
    return Dendrogram(n_leaves=n, merges=merges)
