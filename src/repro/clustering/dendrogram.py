"""Dendrogram structure produced by agglomerative clustering.

Leaves are numbered ``0..n-1`` (the input order); the ``t``-th merge
creates internal node ``n + t``. The final merge's node is the root.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Merge:
    """One agglomeration step joining two existing nodes."""

    left: int
    right: int
    height: float
    node_id: int


@dataclass
class Dendrogram:
    """A full binary merge tree over ``n_leaves`` observations."""

    n_leaves: int
    merges: list[Merge]

    def __post_init__(self) -> None:
        if self.n_leaves >= 2 and len(self.merges) != self.n_leaves - 1:
            raise ValueError(
                f"{self.n_leaves} leaves require {self.n_leaves - 1} merges, "
                f"got {len(self.merges)}"
            )

    @property
    def root_id(self) -> int:
        if self.n_leaves == 1:
            return 0
        return self.merges[-1].node_id

    def children(self) -> dict[int, tuple[int, int]]:
        """``node_id -> (left, right)`` for all internal nodes."""
        return {m.node_id: (m.left, m.right) for m in self.merges}

    def leaves_under(self, node_id: int) -> list[int]:
        """Leaf indices in the subtree rooted at ``node_id``."""
        child_map = self.children()
        result: list[int] = []
        stack = [node_id]
        while stack:
            node = stack.pop()
            if node < self.n_leaves:
                result.append(node)
            else:
                stack.extend(child_map[node])
        return sorted(result)

    def cut(self, height: float) -> list[list[int]]:
        """Flat clustering: maximal subtrees merged at or below ``height``."""
        child_map = self.children()
        heights = {m.node_id: m.height for m in self.merges}
        clusters: list[list[int]] = []
        stack = [self.root_id]
        while stack:
            node = stack.pop()
            if node < self.n_leaves:
                clusters.append([node])
            elif heights[node] <= height:
                clusters.append(self.leaves_under(node))
            else:
                stack.extend(child_map[node])
        return sorted(clusters)
