"""Pairwise distance computations for clustering.

The paper's CCT uses Euclidean distances over input-set embeddings (other
metrics were examined and found inferior); cosine distance is provided
for the IC-S baseline's title embeddings.
"""

from __future__ import annotations

import numpy as np


def pairwise_euclidean(vectors: np.ndarray) -> np.ndarray:
    """Dense symmetric Euclidean distance matrix.

    Computed via the Gram-matrix identity with a clip guarding against
    tiny negative values from floating-point cancellation.
    """
    x = np.asarray(vectors, dtype=np.float64)
    squared = np.sum(x * x, axis=1)
    gram = x @ x.T
    d2 = squared[:, None] + squared[None, :] - 2.0 * gram
    np.clip(d2, 0.0, None, out=d2)
    dist = np.sqrt(d2)
    np.fill_diagonal(dist, 0.0)
    return dist


def pairwise_cosine(vectors: np.ndarray) -> np.ndarray:
    """Dense cosine *distance* matrix (1 - cosine similarity).

    Zero vectors are treated as maximally distant from everything except
    other zero vectors.
    """
    x = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(x, axis=1)
    safe = np.where(norms > 0, norms, 1.0)
    unit = x / safe[:, None]
    sim = unit @ unit.T
    np.clip(sim, -1.0, 1.0, out=sim)
    zero = norms == 0
    if zero.any():
        sim[zero, :] = 0.0
        sim[:, zero] = 0.0
        sim[np.ix_(zero, zero)] = 1.0
    dist = 1.0 - sim
    np.fill_diagonal(dist, 0.0)
    return dist


# Registered metric names; distance_matrix dispatches through this table
# and names the valid options when rejecting an unknown metric.
_METRICS = {
    "euclidean": pairwise_euclidean,
    "cosine": pairwise_cosine,
}


def distance_matrix(vectors: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Dispatch on metric name.

    >>> float(distance_matrix(np.array([[0.0, 0.0], [3.0, 4.0]]))[0, 1])
    5.0

    Unknown metrics are rejected up front, naming the offender and the
    registered alternatives:

    >>> distance_matrix(np.zeros((2, 2)), metric="chebyshev")
    Traceback (most recent call last):
        ...
    ValueError: unknown metric 'chebyshev'; expected one of ['cosine', 'euclidean']
    """
    compute = _METRICS.get(metric)
    if compute is None:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {sorted(_METRICS)}"
        )
    return compute(vectors)
