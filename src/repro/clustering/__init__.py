"""Hierarchical agglomerative clustering and dendrograms."""

from repro.clustering.agglomerative import agglomerative_clustering
from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.distance import (
    distance_matrix,
    pairwise_cosine,
    pairwise_euclidean,
)

__all__ = [
    "Dendrogram",
    "Merge",
    "agglomerative_clustering",
    "distance_matrix",
    "pairwise_cosine",
    "pairwise_euclidean",
]
