"""Serving cost model for tree shaping (calibrated, not guessed).

The shaper needs to predict two things about a candidate tree *without
publishing it*: the expected per-query latency of the succinct read
path, and the snapshot bytes it will occupy. Both decompose over the
workload because :meth:`BaseSnapshotIndexes.best_category` is a loop
whose work is proportional to observable counts:

* it touches one **posting** per (query item, containing category) pair
  — summed over a query that is exactly ``sum(|q ∩ C|)``, the same
  table :func:`repro.core.scoring.category_intersections` builds;
* it scores one **candidate** per category with a nonzero intersection;
* answering derives the best category's **root path** (depth + 1 nodes).

So the expected per-query cost under a workload with weights ``w`` is::

    base_ns
      + ns_per_posting   * E_w[ postings touched ]
      + ns_per_candidate * E_w[ distinct candidates ]
      + ns_per_path_node * E_w[ best-path nodes ]

:func:`calibrate_cost_model` measures those coefficients by timing the
real succinct :class:`~repro.serving.indexes.SnapshotIndexes` on
sampled workload queries and solving the least-squares fit (numpy),
clamping coefficients at zero. Snapshot bytes are not modeled — they
are *measured*, by running every category's item list through the same
LEB128 delta-varint codec the flat snapshot uses
(:func:`repro.serving.succinct.encode_postings`), plus a per-category
overhead constant for the header/offset/label sections.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Iterable

from repro.core.input_sets import OCTInstance
from repro.core.scoring import category_intersections
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.serving.succinct import encode_postings


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs of the succinct read path.

    ``ns_*`` coefficients come from :func:`calibrate_cost_model`;
    ``bytes_per_category`` covers the flat layout's fixed per-category
    overhead (offsets, sizes, depth, label pointer); ``bytes_per_posting``
    is only a fallback for item sets the varint codec cannot encode.
    """

    base_ns: float = 2000.0
    ns_per_posting: float = 120.0
    ns_per_candidate: float = 300.0
    ns_per_path_node: float = 150.0
    bytes_per_category: float = 64.0
    bytes_per_posting: float = 2.5

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CostModel":
        return cls(**{k: float(payload[k]) for k in asdict(cls())})


@dataclass(frozen=True)
class CostEstimate:
    """Predicted serving cost of one tree over one workload."""

    expected_query_ns: float
    snapshot_bytes: int
    expected_postings: float
    expected_candidates: float
    expected_path_nodes: float
    n_categories: int
    max_depth: int
    max_fanout: int

    def to_dict(self) -> dict:
        return asdict(self)


def category_encoded_bytes(model: CostModel, items: Iterable) -> int:
    """Snapshot bytes one category's item set costs (measured codec).

    Integer item sets run through the real LEB128 delta-varint codec;
    anything else falls back to ``bytes_per_posting`` per item.
    """
    items = list(items)
    try:
        codes = sorted(items)
        if codes and not isinstance(codes[0], int):
            raise TypeError
        payload = len(encode_postings(codes)) if codes else 0
    except (TypeError, ValueError):
        payload = int(round(model.bytes_per_posting * len(items)))
    return int(model.bytes_per_category) + payload


def workload_features(
    tree: CategoryTree,
    instance: OCTInstance,
    variant: Variant,
    inter: dict[int, dict[int, int]] | None = None,
) -> dict[int, tuple[int, int, int]]:
    """``{sid: (postings, candidates, path_nodes)}`` for each query.

    ``path_nodes`` is the best-scoring category's depth + 1 (the root
    path the read path derives for an answer), 0 for uncovered sets.
    When ``inter`` is supplied it must describe exactly the categories
    present in ``tree`` (the shaper passes an alive-filtered table).
    """
    from repro.core.similarity import variant_score_from_sizes

    if inter is None:
        inter = category_intersections(tree, instance)
    sizes = {cat.cid: len(cat.items) for cat in tree.categories()}
    depths = {cat.cid: cat.depth for cat in tree.categories()}
    feats: dict[int, tuple[int, int, int]] = {}
    for q in instance:
        counts = inter[q.sid]
        delta = instance.effective_threshold(q, variant.delta)
        best_key = (0.0, 0.0, -1)
        best_cid = None
        for cid, common in counts.items():
            c_size = sizes[cid]
            s = variant_score_from_sizes(
                variant, len(q.items), c_size, common, delta
            )
            if s <= 0.0:
                continue
            prec = common / c_size if c_size else 0.0
            key = (s, prec, depths[cid])
            if key > best_key:
                best_key = key
                best_cid = cid
        feats[q.sid] = (
            sum(counts.values()),
            len(counts),
            depths[best_cid] + 1 if best_cid is not None else 0,
        )
    return feats


def estimate_cost(
    tree: CategoryTree,
    instance: OCTInstance,
    variant: Variant,
    model: CostModel,
    inter: dict[int, dict[int, int]] | None = None,
) -> CostEstimate:
    """The exact cost-model evaluation of a tree over a workload.

    "Exact" meaning: the expectation terms are computed from the full
    intersection table, not sampled — this is the number the shaper's
    budget-met verdict is asserted against.
    """
    feats = workload_features(tree, instance, variant, inter=inter)
    total_w = instance.total_weight
    e_post = e_cand = e_path = 0.0
    for q in instance:
        w = q.weight / total_w if total_w > 0 else 0.0
        p, c, d = feats[q.sid]
        e_post += w * p
        e_cand += w * c
        e_path += w * d
    cats = list(tree.categories())
    snapshot_bytes = sum(
        category_encoded_bytes(model, cat.items) for cat in cats
    )
    return CostEstimate(
        expected_query_ns=(
            model.base_ns
            + model.ns_per_posting * e_post
            + model.ns_per_candidate * e_cand
            + model.ns_per_path_node * e_path
        ),
        snapshot_bytes=snapshot_bytes,
        expected_postings=e_post,
        expected_candidates=e_cand,
        expected_path_nodes=e_path,
        n_categories=len(cats),
        max_depth=max(cat.depth for cat in cats),
        max_fanout=max(len(cat.children) for cat in cats),
    )


def calibrate_cost_model(
    tree: CategoryTree,
    instance: OCTInstance,
    variant: Variant,
    samples: int = 256,
    repeats: int = 3,
    bytes_per_category: float = 64.0,
) -> CostModel:
    """Fit the ``ns_*`` coefficients by timing the succinct read path.

    Builds an in-memory succinct :class:`SnapshotIndexes` over the
    tree, times ``best_category`` on up to ``samples`` workload queries
    (best of ``repeats`` to shed scheduler noise), and least-squares
    fits ``t ≈ base + a·postings + b·candidates + c·path`` with numpy,
    clamping coefficients at zero. Falls back to the default constants
    when the fit is degenerate (e.g. all sampled queries identical).
    """
    import numpy as np

    from repro.serving.indexes import SnapshotIndexes

    indexes = SnapshotIndexes(
        tree, instance, variant, use_bitset=False, tree_repr="succinct"
    )
    feats = workload_features(tree, instance, variant)
    queries = sorted(instance, key=lambda q: -q.weight)[:samples]

    rows: list[tuple[float, float, float, float]] = []
    times: list[float] = []
    for q in queries:
        frozen = q.items
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter_ns()
            indexes.best_category(frozen)
            dt = time.perf_counter_ns() - t0
            best = dt if best is None else min(best, dt)
        p, c, d = feats[q.sid]
        rows.append((1.0, float(p), float(c), float(d)))
        times.append(float(best))

    defaults = CostModel(bytes_per_category=bytes_per_category)
    if len(rows) < 4:
        return defaults
    a = np.array(rows)
    t = np.array(times)
    coef, _res, rank, _sv = np.linalg.lstsq(a, t, rcond=None)
    if rank < 4:
        return defaults
    base, per_post, per_cand, per_path = (max(0.0, float(x)) for x in coef)
    if per_post == 0.0 and per_cand == 0.0:
        return defaults
    return CostModel(
        base_ns=base,
        ns_per_posting=per_post,
        ns_per_candidate=per_cand,
        ns_per_path_node=per_path,
        bytes_per_category=bytes_per_category,
    )
