"""Latency/memory-budgeted tree shaping with exact quality accounting.

See :mod:`repro.shaping.shaper` for the budgeted passes and
:mod:`repro.shaping.cost` for the calibrated serving cost model.
"""

from repro.shaping.cost import (
    CostEstimate,
    CostModel,
    calibrate_cost_model,
    category_encoded_bytes,
    estimate_cost,
    workload_features,
)
from repro.shaping.shaper import (
    ShapingBudget,
    ShapingResult,
    TreeShaper,
    shape_tree,
)

__all__ = [
    "CostEstimate",
    "CostModel",
    "ShapingBudget",
    "ShapingResult",
    "TreeShaper",
    "calibrate_cost_model",
    "category_encoded_bytes",
    "estimate_cost",
    "shape_tree",
    "workload_features",
]
