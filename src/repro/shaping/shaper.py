"""Latency/memory-budgeted tree shaping (efficiency–precision trade-off).

Borrowing the framing of "Enabling Efficiency-Precision Trade-offs for
Label Trees in Extreme Classification" (PAPERS.md): a built category
tree is *post-processed* to meet an explicit serving budget, and the
quality it gives up is reported exactly, not estimated.

Four operations, applied in a fixed order on a **copy** of the input:

1. **Depth capping** — every category at ``max_depth`` has its whole
   subtree collapsed into it (descendant items are already present by
   the tree invariant, so this only deletes candidate categories).
2. **Hub splitting** — every category with more than ``max_children``
   children has them chunked under inserted intermediate nodes (the
   paper's intermediate-category operation) until the fan-out bound
   holds everywhere. This *adds* categories, trading snapshot bytes
   for bounded fan-out.
3. **Width pruning** — a lazy-greedy loop removes the categories with
   the best (quality lost / serving cost gained) ratio until the
   latency and/or memory budget is met, under the calibrated
   :class:`~repro.shaping.cost.CostModel`. When ``max_children`` is
   also budgeted, only leaves are pruned so splicing never re-widens a
   node past the bound.
4. A final **exact re-estimate** over the shaped tree produces the
   budget-met verdict — never the greedy loop's running approximation.

Exactness contract: per-(set, category) scores are static (shaping
never mutates an existing category's item set), so the shaper keeps
per-set candidate lists scored with the same
``variant_score_from_sizes`` calls the offline reference makes, and
sums the final total in instance iteration order. The reported
``score_after`` therefore equals ``score_tree(result.tree).normalized``
bit for bit — a property test in ``tests/test_shaping.py`` holds it to
``==``, not ``approx``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.input_sets import OCTInstance
from repro.core.scoring import category_intersections
from repro.core.similarity import variant_score_from_sizes
from repro.core.tree import Category, CategoryTree
from repro.core.variants import Variant
from repro.observability.tracer import get_tracer
from repro.shaping.cost import (
    CostEstimate,
    CostModel,
    category_encoded_bytes,
    estimate_cost,
)

_MAX_OUTER_ROUNDS = 64


@dataclass(frozen=True)
class ShapingBudget:
    """Explicit serving budget a shaped tree must meet.

    Any subset of the four constraints may be set; an all-``None``
    budget makes shaping the identity. ``max_query_ns`` is judged
    against the cost model's exact expectation, ``max_snapshot_bytes``
    against the measured varint encoding of every category.
    """

    max_query_ns: float | None = None
    max_snapshot_bytes: int | None = None
    max_depth: int | None = None
    max_children: int | None = None

    @property
    def unbounded(self) -> bool:
        return (
            self.max_query_ns is None
            and self.max_snapshot_bytes is None
            and self.max_depth is None
            and self.max_children is None
        )

    def satisfied_by(self, est: CostEstimate) -> bool:
        if self.max_query_ns is not None and est.expected_query_ns > self.max_query_ns:
            return False
        if (
            self.max_snapshot_bytes is not None
            and est.snapshot_bytes > self.max_snapshot_bytes
        ):
            return False
        if self.max_depth is not None and est.max_depth > self.max_depth:
            return False
        if self.max_children is not None and est.max_fanout > self.max_children:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "max_query_ns": self.max_query_ns,
            "max_snapshot_bytes": self.max_snapshot_bytes,
            "max_depth": self.max_depth,
            "max_children": self.max_children,
        }


@dataclass
class ShapingResult:
    """What shaping did, what it cost, and what it gave up."""

    tree: CategoryTree
    budget: ShapingBudget
    met: bool
    score_before: float      # normalized, == score_tree(input).normalized
    score_after: float       # normalized, == score_tree(tree).normalized
    total_before: float      # raw weighted totals (same summation order)
    total_after: float
    cost_before: CostEstimate
    cost_after: CostEstimate
    removed: int = 0
    hub_splits: int = 0
    depth_capped: int = 0
    width_pruned: int = 0
    actions: dict[str, int] = field(default_factory=dict)

    @property
    def quality_given_up(self) -> float:
        """Normalized score surrendered to meet the budget (>= 0 - fp)."""
        return self.score_before - self.score_after

    def to_dict(self) -> dict:
        return {
            "budget": self.budget.to_dict(),
            "met": self.met,
            "score_before": self.score_before,
            "score_after": self.score_after,
            "quality_given_up": self.quality_given_up,
            "cost_before": self.cost_before.to_dict(),
            "cost_after": self.cost_after.to_dict(),
            "removed": self.removed,
            "hub_splits": self.hub_splits,
            "depth_capped": self.depth_capped,
            "width_pruned": self.width_pruned,
        }


class _Bookkeeping:
    """Static per-(set, category) scores with alive/dead tracking.

    Built once after the structural passes; greedy pruning only ever
    *deletes* candidates, so each set's candidate scores are computed
    exactly once with the reference scorer and the current best is the
    maximum over alive entries (a sorted list with a lazily advancing
    pointer).
    """

    def __init__(
        self, tree: CategoryTree, instance: OCTInstance, variant: Variant
    ) -> None:
        self.instance = instance
        self.inter = category_intersections(tree, instance)
        self.sizes = {cat.cid: len(cat.items) for cat in tree.categories()}
        self.alive: dict[int, bool] = {
            cat.cid: True for cat in tree.categories()
        }
        # Per set: candidate (score, cid) descending, plus a skip pointer.
        self.cands: dict[int, list[tuple[float, int]]] = {}
        self.ptr: dict[int, int] = {}
        self.sets_with: dict[int, list[int]] = {cid: [] for cid in self.alive}
        for q in instance:
            delta = instance.effective_threshold(q, variant.delta)
            entries: list[tuple[float, int]] = []
            for cid, common in self.inter[q.sid].items():
                s = variant_score_from_sizes(
                    variant, len(q.items), self.sizes[cid], common, delta
                )
                if s > 0.0:
                    entries.append((-s, cid))
                self.sets_with[cid].append(q.sid)
            entries.sort()
            self.cands[q.sid] = entries
            self.ptr[q.sid] = 0

    def best(self, sid: int) -> float:
        """Current best score of one set over alive candidates."""
        entries = self.cands[sid]
        i = self.ptr[sid]
        while i < len(entries) and not self.alive.get(entries[i][1], False):
            i += 1
        self.ptr[sid] = i
        return -entries[i][0] if i < len(entries) else 0.0

    def loss_if_removed(self, cid: int) -> float:
        """Raw weighted score lost if ``cid`` is removed right now."""
        loss = 0.0
        weight_of = self._weights()
        for sid in self.sets_with[cid]:
            entries = self.cands[sid]
            best = self.best(sid)
            if best <= 0.0:
                continue
            # Does cid hold the current best, and is it the only holder?
            i = self.ptr[sid]
            holder = False
            other_holder = False
            runner = 0.0
            while i < len(entries):
                val, entry_cid = -entries[i][0], entries[i][1]
                if not self.alive.get(entry_cid, False):
                    i += 1
                    continue
                if val < best:
                    runner = val
                    break
                if entry_cid == cid:
                    holder = True
                else:
                    other_holder = True
                i += 1
            if holder and not other_holder:
                loss += weight_of[sid] * (best - runner)
        return loss

    def remove(self, cid: int) -> None:
        self.alive[cid] = False

    def alive_inter(self) -> dict[int, dict[int, int]]:
        """The intersection table restricted to surviving categories.

        This is what cost estimation over the pruned tree must see —
        the raw ``inter`` still carries removed categories' counts.
        """
        alive = self.alive
        return {
            sid: {cid: n for cid, n in counts.items() if alive.get(cid)}
            for sid, counts in self.inter.items()
        }

    def exact_total(self) -> float:
        """Raw weighted total, summed exactly like ``score_tree``."""
        total = 0.0
        for q in self.instance:
            total += q.weight * self.best(q.sid)
        return total

    def _weights(self) -> dict[int, float]:
        cached = getattr(self, "_weight_cache", None)
        if cached is None:
            cached = {q.sid: q.weight for q in self.instance}
            self._weight_cache = cached
        return cached


class TreeShaper:
    """Shape trees against one (instance, variant, cost model) context."""

    def __init__(
        self,
        instance: OCTInstance,
        variant: Variant,
        model: CostModel | None = None,
    ) -> None:
        self.instance = instance
        self.variant = variant
        self.model = model if model is not None else CostModel()

    # -- structural passes -------------------------------------------------

    def _cap_depth(self, tree: CategoryTree, max_depth: int) -> int:
        """Collapse every subtree below ``max_depth`` into its root."""
        removed = 0
        frontier = [(tree.root, 0)]
        at_cap: list[Category] = []
        while frontier:
            cat, depth = frontier.pop()
            if depth >= max_depth:
                at_cap.append(cat)
                continue
            frontier.extend((child, depth + 1) for child in cat.children)
        for cat in at_cap:
            doomed = list(cat.descendants())
            for node in doomed:
                node.parent = None
                node.children = []
            cat.children = []
            removed += len(doomed)
        return removed

    def _split_hubs(self, tree: CategoryTree, max_children: int) -> int:
        """Insert intermediate parents until fan-out <= max_children."""
        splits = 0
        again = True
        while again:
            again = False
            for cat in list(tree.categories()):
                kids = sorted(cat.children, key=lambda c: c.cid)
                if len(kids) <= max_children:
                    continue
                for i in range(0, len(kids), max_children):
                    group = kids[i : i + max_children]
                    if len(group) == len(kids):
                        break
                    name = cat.label or f"C{cat.cid}"
                    tree.insert_parent(group, label=f"{name}/hub{i}")
                    splits += 1
                again = True
        return splits

    # -- the budgeted greedy -----------------------------------------------

    def shape(self, tree: CategoryTree, budget: ShapingBudget) -> ShapingResult:
        tracer = get_tracer()
        with tracer.span("shaping.shape"):
            result = self._shape(tree, budget, tracer)
        tracer.count("shaping.runs")
        tracer.count("shaping.removed", result.removed)
        tracer.count("shaping.hub_splits", result.hub_splits)
        tracer.gauge("shaping.quality_given_up", result.quality_given_up)
        tracer.gauge("shaping.met", 1.0 if result.met else 0.0)
        return result

    def _shape(
        self, tree: CategoryTree, budget: ShapingBudget, tracer
    ) -> ShapingResult:
        instance, variant, model = self.instance, self.variant, self.model
        before_book = _Bookkeeping(tree, instance, variant)
        total_before = before_book.exact_total()
        cost_before = estimate_cost(
            tree, instance, variant, model, inter=before_book.inter
        )
        work = tree.copy()

        # Hub splitting runs first: it inserts levels (deepening
        # subtrees), while depth capping and leaf pruning never widen a
        # node — so this order leaves both structural bounds standing.
        hub_splits = 0
        if budget.max_children is not None and budget.max_children >= 2:
            # Chunking into groups of m shrinks fan-out only for m >= 2;
            # max_children=1 is unreachable by splitting and is left to
            # the final verdict to report honestly.
            hub_splits = self._split_hubs(work, budget.max_children)
        depth_capped = 0
        if budget.max_depth is not None:
            depth_capped = self._cap_depth(work, budget.max_depth)

        book = _Bookkeeping(work, instance, variant)
        width_pruned = self._prune_width(work, budget, book, tracer)

        total_after = book.exact_total()
        cost_after = estimate_cost(
            work, instance, variant, model, inter=book.alive_inter()
        )
        denom = instance.total_weight
        return ShapingResult(
            tree=work,
            budget=budget,
            met=budget.satisfied_by(cost_after),
            score_before=total_before / denom if denom > 0 else 0.0,
            score_after=total_after / denom if denom > 0 else 0.0,
            total_before=total_before,
            total_after=total_after,
            cost_before=cost_before,
            cost_after=cost_after,
            removed=depth_capped + width_pruned,
            hub_splits=hub_splits,
            depth_capped=depth_capped,
            width_pruned=width_pruned,
        )

    def _prune_width(
        self,
        work: CategoryTree,
        budget: ShapingBudget,
        book: _Bookkeeping,
        tracer,
    ) -> int:
        """Lazy-greedy removal until the latency/memory budget is met."""
        if budget.max_query_ns is None and budget.max_snapshot_bytes is None:
            return 0
        instance, model = self.instance, self.model
        total_w = instance.total_weight
        norm = (1.0 / total_w) if total_w > 0 else 0.0
        leaves_only = budget.max_children is not None

        by_cid = {cat.cid: cat for cat in work.categories()}
        # Static per-category serving gains (removals elsewhere never
        # change another category's intersections).
        gain_ns: dict[int, float] = {}
        gain_bytes: dict[int, int] = {}
        for cid, cat in by_cid.items():
            post = cand = 0.0
            for sid in book.sets_with[cid]:
                w = book._weights()[sid] * norm
                post += w * book.inter[sid][cid]
                cand += w
            gain_ns[cid] = (
                model.ns_per_posting * post + model.ns_per_candidate * cand
            )
            gain_bytes[cid] = category_encoded_bytes(model, cat.items)

        est = estimate_cost(
            work, instance, self.variant, model, inter=book.inter
        )
        cur_ns = est.expected_query_ns
        cur_bytes = float(est.snapshot_bytes)

        # Fixed normalizers keep heap ratios comparable across the whole
        # run (the violation amounts shrink as pruning progresses, so
        # normalizing by them would re-scale later entries against
        # earlier ones).
        w_ns = (
            1.0 / max(budget.max_query_ns, 1.0)
            if budget.max_query_ns is not None
            else 0.0
        )
        w_bytes = (
            1.0 / max(budget.max_snapshot_bytes, 1.0)
            if budget.max_snapshot_bytes is not None
            else 0.0
        )

        def combined_gain(cid: int) -> float:
            return w_ns * gain_ns[cid] + w_bytes * gain_bytes[cid]

        def needs() -> tuple[float, float]:
            need_ns = (
                max(0.0, cur_ns - budget.max_query_ns)
                if budget.max_query_ns is not None
                else 0.0
            )
            need_bytes = (
                max(0.0, cur_bytes - budget.max_snapshot_bytes)
                if budget.max_snapshot_bytes is not None
                else 0.0
            )
            return need_ns, need_bytes

        removable = [cid for cid in by_cid if cid != work.root.cid]
        need_ns, need_bytes = needs()
        if need_ns <= 0 and need_bytes <= 0:
            return 0

        heap: list[tuple[float, int]] = []
        for cid in removable:
            g = combined_gain(cid)
            if g > 0:
                heapq.heappush(heap, (book.loss_if_removed(cid) / g, cid))
        deferred: dict[int, bool] = {}
        pruned = 0

        for _round in range(_MAX_OUTER_ROUNDS):
            need_ns, need_bytes = needs()
            if need_ns <= 0 and need_bytes <= 0:
                break
            progressed = False
            while heap:
                need_ns, need_bytes = needs()
                if need_ns <= 0 and need_bytes <= 0:
                    break
                ratio, cid = heapq.heappop(heap)
                if not book.alive.get(cid, False):
                    continue
                cat = by_cid[cid]
                if leaves_only and cat.children:
                    deferred[cid] = True
                    continue
                fresh = book.loss_if_removed(cid) / combined_gain(cid)
                if heap and fresh > heap[0][0] + 1e-18:
                    heapq.heappush(heap, (fresh, cid))
                    continue
                # Accept: remove from tree and bookkeeping, update loads.
                parent = cat.parent
                work.remove_category(cat)
                book.remove(cid)
                cur_ns -= gain_ns[cid]
                cur_bytes -= gain_bytes[cid]
                pruned += 1
                progressed = True
                if (
                    leaves_only
                    and parent is not None
                    and not parent.children
                    and deferred.pop(parent.cid, False)
                ):
                    heapq.heappush(
                        heap,
                        (
                            book.loss_if_removed(parent.cid)
                            / combined_gain(parent.cid),
                            parent.cid,
                        ),
                    )
            # Re-anchor the running estimate on the exact cost (the
            # inner loop froze the path term and ignored depth shifts).
            est = estimate_cost(
                work, instance, self.variant, model, inter=book.alive_inter()
            )
            cur_ns = est.expected_query_ns
            cur_bytes = float(est.snapshot_bytes)
            need_ns, need_bytes = needs()
            if (need_ns <= 0 and need_bytes <= 0) or not progressed:
                break
        tracer.count("shaping.width_pruned", pruned)
        return pruned


def shape_tree(
    tree: CategoryTree,
    instance: OCTInstance,
    variant: Variant,
    budget: ShapingBudget,
    model: CostModel | None = None,
) -> ShapingResult:
    """One-shot convenience wrapper around :class:`TreeShaper`."""
    return TreeShaper(instance, variant, model).shape(tree, budget)
