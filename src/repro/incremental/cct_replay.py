"""Replay CCT embedding intersection counts across dataset versions.

CCT's expensive stage packs the instance and counts all pairwise
intersections; :mod:`repro.algorithms.cct_cache` already memoizes the
sparse ``(n, sizes, ii, jj, counts)`` form per instance content, but a
catalog delta changes the content key, so every new dataset version
would recount from scratch. Intersection counts only depend on item
sets, though — a delta leaves every surviving pair's count untouched.
This module translates a cached entry through the old→new sid match:
surviving pairs are re-indexed to the new instance's positions, pairs
touching removed sets are dropped, and pairs touching added sets are
counted directly (a churn-sized amount of work). The translated entry
is seeded into the cache under the *new* instance's key, so the next
CCT build over the new version hits immediately.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.cct_cache import EmbeddingCache, get_embedding_cache
from repro.core.input_sets import OCTInstance
from repro.incremental.delta import match_instances
from repro.observability import get_tracer


def replay_embedding_counts(
    old_instance: OCTInstance,
    new_instance: OCTInstance,
    cache: EmbeddingCache | None = None,
) -> bool:
    """Seed the new instance's intersection counts from the old entry.

    Returns True when an entry was seeded — i.e. the old instance's
    counts were cached and the new instance's were not. The seeded
    entry is exactly what a from-scratch
    :meth:`~repro.core.bitset.BitsetUniverse.intersecting_pairs` run
    over the new instance produces (pinned by the differential tests).
    """
    cache = cache if cache is not None else get_embedding_cache()
    old_entry = cache.get(cache.key(old_instance))
    if old_entry is None:
        return False
    new_key = cache.key(new_instance)
    if cache.get(new_key) is not None:
        return False  # already counted

    match = match_instances(old_instance, new_instance)
    old_pos = {q.sid: i for i, q in enumerate(old_instance.sets)}
    new_pos = {q.sid: i for i, q in enumerate(new_instance.sets)}
    n_old = len(old_instance.sets)
    n_new = len(new_instance.sets)

    # Old position -> new position (-1 for removed sets).
    pos_map = np.full(n_old, -1, dtype=np.int64)
    for old_sid, new_sid in match.renames.items():
        pos_map[old_pos[old_sid]] = new_pos[new_sid]

    _n, _sizes, iu, ju, counts = old_entry
    mi = pos_map[iu]
    mj = pos_map[ju]
    keep = (mi >= 0) & (mj >= 0)
    kept_i = np.minimum(mi[keep], mj[keep])
    kept_j = np.maximum(mi[keep], mj[keep])
    kept_counts = np.asarray(counts)[keep]

    # Pairs with an added endpoint are counted directly — churn-sized.
    added_pairs: dict[int, int] = {}  # key i*n+j -> count
    if match.added:
        index = new_instance.sets_containing()
        for sid in sorted(match.added):
            q = new_instance.get(sid)
            pos = new_pos[sid]
            partners: set[int] = set()
            for item in q.items:
                for other in index.get(item, ()):
                    if other.sid != sid:
                        partners.add(other.sid)
            for partner in partners:
                a, b = sorted((pos, new_pos[partner]))
                key = a * n_new + b
                if key in added_pairs:
                    continue
                added_pairs[key] = len(
                    q.items & new_instance.get(partner).items
                )

    keys = np.concatenate(
        [
            kept_i * n_new + kept_j,
            np.fromiter(added_pairs, dtype=np.int64, count=len(added_pairs)),
        ]
    )
    all_counts = np.concatenate(
        [
            kept_counts.astype(np.int64),
            np.fromiter(
                added_pairs.values(), dtype=np.int64, count=len(added_pairs)
            ),
        ]
    )
    # intersecting_pairs returns pairs sorted by the i*n+j key.
    order = np.argsort(keys)
    keys = keys[order]
    all_counts = all_counts[order]

    sizes = np.fromiter(
        (len(q.items) for q in new_instance.sets),
        dtype=np.int64,
        count=n_new,
    )
    entry = (
        n_new,
        sizes,
        (keys // n_new).astype(np.int64),
        (keys % n_new).astype(np.int64),
        all_counts,
    )
    cache.put(new_key, entry)
    get_tracer().count("incremental.cct_replayed")
    return True
