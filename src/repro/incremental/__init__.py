"""Incremental delta rebuilds (ROADMAP: incremental maintenance).

The paper's pipeline rebuilds from scratch on every publish; this
package makes a publish after small catalog churn cost only the churned
neighborhood:

* :mod:`repro.incremental.delta` — :class:`CatalogDelta` (added /
  removed / reweighted sets) with apply/compose algebra, and content
  matching between instances.
* :mod:`repro.incremental.conflicts` — dirty-sid maintenance of the
  pairwise analysis and 3-conflict set.
* :mod:`repro.incremental.builder` — :class:`IncrementalBuilder`:
  full builds capture a :class:`BuildState`; delta builds reuse it and
  produce byte-identical trees.
* :mod:`repro.incremental.state` — per-snapshot persistence of build
  state next to a serving :class:`~repro.serving.SnapshotStore`.
* :mod:`repro.incremental.staging` — memoized re-preprocessing of a
  churned catalog (search-engine result sets are the dominant cost).
* :mod:`repro.incremental.cct_replay` — replay of cached CCT embedding
  intersection counts across dataset versions.
"""

from repro.incremental.builder import (
    BuildState,
    DeltaBuildResult,
    DeltaMismatchError,
    IncrementalBuilder,
)
from repro.incremental.cct_replay import replay_embedding_counts
from repro.incremental.conflicts import (
    PairwiseUpdateStats,
    TripleUpdateStats,
    update_pairwise,
    update_three_conflicts,
)
from repro.incremental.delta import (
    CatalogDelta,
    InstanceMatch,
    InvalidDeltaError,
    match_instances,
)
from repro.incremental.staging import (
    ResultSetCache,
    incremental_preprocess,
)
from repro.incremental.state import IncrementalStateStore

__all__ = [
    "BuildState",
    "CatalogDelta",
    "DeltaBuildResult",
    "DeltaMismatchError",
    "IncrementalBuilder",
    "IncrementalStateStore",
    "InstanceMatch",
    "InvalidDeltaError",
    "PairwiseUpdateStats",
    "ResultSetCache",
    "TripleUpdateStats",
    "incremental_preprocess",
    "match_instances",
    "replay_embedding_counts",
    "update_pairwise",
    "update_three_conflicts",
]
