"""Cross-process persistence of incremental build state.

A :class:`~repro.incremental.builder.BuildState` normally lives in the
process that built it; serving deployments restart, so the state is
also persisted as a JSON sidecar next to the snapshot store —
``<root>/incremental/<snapshot_id>.json``, keyed by the snapshot the
build produced. ``repro build --delta-from <dir>`` loads the sidecar
for the store's CURRENT snapshot and delta-builds against it.

Writes follow the store's crash-safety discipline: serialize to a
temporary file in the same directory, then ``os.replace`` — a crash
mid-write leaves either the old sidecar or none, never a torn one.
Loads verify the format marker and reconstruct the ranking from the
persisted instance (rankings are deterministic, so recomputing beats
serializing).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.conflicts.ranking import rank_sets
from repro.conflicts.two_conflicts import PairwiseAnalysis
from repro.core.exceptions import ReproError
from repro.incremental.builder import BuildState
from repro.io import instance_from_dict, instance_to_dict
from repro.mis.cache import MISComponentCache
from repro.serving.snapshot import variant_from_spec, variant_spec

FORMAT = "incremental-state-v1"


class StateFormatError(ReproError):
    """A sidecar exists but cannot be interpreted."""


class _IdentitySidMap(dict):
    """sid -> sid; lets payload restore reuse the relabeling seeder."""

    def __missing__(self, key):
        return key


def _analysis_to_dict(analysis: PairwiseAnalysis) -> dict:
    def dump(pairs: set) -> list:
        return [
            [upper, lower, analysis.intersections[(upper, lower)]]
            for upper, lower in sorted(pairs)
        ]

    return {
        "conflicts": dump(analysis.conflicts),
        "must_together": dump(analysis.must_together),
        "can_separately": dump(analysis.can_separately),
    }


def _analysis_from_dict(payload: dict, ranking) -> PairwiseAnalysis:
    analysis = PairwiseAnalysis(ranking=ranking)
    for name, bucket in (
        ("conflicts", analysis.conflicts),
        ("must_together", analysis.must_together),
        ("can_separately", analysis.can_separately),
    ):
        for upper, lower, shared in payload.get(name, []):
            pair = (int(upper), int(lower))
            bucket.add(pair)
            analysis.intersections[pair] = int(shared)
    return analysis


class IncrementalStateStore:
    """Sidecar files for build state, one per snapshot id."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.dir = self.root / "incremental"

    def path_for(self, snapshot_id: str) -> Path:
        return self.dir / f"{snapshot_id}.json"

    def has(self, snapshot_id: str) -> bool:
        return self.path_for(snapshot_id).exists()

    def save(self, snapshot_id: str, state: BuildState) -> Path:
        payload = {
            "format": FORMAT,
            "snapshot_id": snapshot_id,
            "fingerprint": state.fingerprint,
            "variant": variant_spec(state.variant),
            "full_build_wall_s": state.full_build_wall_s,
            "instance": instance_to_dict(state.instance),
            "analysis": _analysis_to_dict(state.analysis),
            "triples": [list(tri) for tri in sorted(state.triples)],
            "mis_payload": state.mis_cache.to_payload_dict(),
        }
        self.dir.mkdir(parents=True, exist_ok=True)
        final = self.path_for(snapshot_id)
        tmp = final.with_name(final.name + f".tmp-{os.getpid()}")
        with open(tmp, "w") as f:
            json.dump(payload, f, sort_keys=True)
        os.replace(tmp, final)
        return final

    def load(self, snapshot_id: str) -> BuildState | None:
        """The persisted state for a snapshot, or None when absent."""
        path = self.path_for(snapshot_id)
        if not path.exists():
            return None
        with open(path) as f:
            payload = json.load(f)
        if payload.get("format") != FORMAT:
            raise StateFormatError(
                f"{path}: unknown state format {payload.get('format')!r}"
            )
        instance = instance_from_dict(payload["instance"])
        ranking = rank_sets(instance)
        analysis = _analysis_from_dict(payload["analysis"], ranking)
        triples = {tuple(tri) for tri in payload.get("triples", [])}
        cache = MISComponentCache(keep_payloads=True)
        mis_payload = payload.get("mis_payload", {})
        identity = _IdentitySidMap()
        knob_groups = {
            tuple(entry["knobs"])
            for entry in mis_payload.get("entries", [])
        }
        for node_budget, exact, max_exact in knob_groups:
            cache.seed_from_payload(
                mis_payload,
                identity,
                int(node_budget),
                bool(exact),
                int(max_exact),
            )
        return BuildState(
            fingerprint=payload["fingerprint"],
            variant=variant_from_spec(payload["variant"]),
            instance=instance,
            analysis=analysis,
            triples=triples,
            mis_cache=cache,
            full_build_wall_s=float(payload["full_build_wall_s"]),
        )
