"""Memoized re-preprocessing of a churned catalog (the staging layer).

Profiling the publish pipeline shows preprocessing — not tree
construction — dominates: the cleaning and result-set stages issue one
:meth:`~repro.search.SearchEngine.result_set` call per query, and on the
large datasets those two passes cost an order of magnitude more than the
CTCR build they feed. But ``result_set`` is a pure function of the query
text and threshold for a fixed engine, and catalog churn leaves most
query texts untouched — so an incremental publish re-runs the *same*
preprocessing code through a memoizing engine proxy and pays the engine
only for queries it has never seen.

Everything downstream of the engine calls (filters, weighting, merging,
sid assignment) is cheap and re-runs verbatim, which is what makes the
staged instance byte-identical to a cold ``preprocess`` of the same
dataset — pinned by the pipeline differential tests.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.core.input_sets import OCTInstance
from repro.observability import get_tracer
from repro.pipeline.preprocess import (
    PreprocessConfig,
    PreprocessReport,
    preprocess,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.catalog.datasets import SyntheticDataset
    from repro.core.variants import Variant


class ResultSetCache:
    """Memo of ``(query text, threshold, top_k) -> frozenset`` results.

    One cache outlives many preprocess runs; it is keyed purely on the
    engine's inputs, so it is only valid while the underlying engine
    (the product catalog and its index) is unchanged. Callers that
    mutate the catalog itself must start a fresh cache.
    """

    def __init__(self) -> None:
        self._results: dict[tuple, frozenset] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._results)

    def lookup(self, key: tuple) -> frozenset | None:
        entry = self._results.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(self, key: tuple, result: frozenset) -> None:
        self._results[key] = result


class _MemoizingEngine:
    """Engine proxy: answers ``result_set`` from the cache when it can.

    Every other attribute (``search``, index internals, ...) delegates
    to the wrapped engine untouched.
    """

    def __init__(self, engine, cache: ResultSetCache) -> None:
        self._engine = engine
        self._cache = cache

    def result_set(
        self, query: str, relevance_threshold: float, top_k: int | None = None
    ) -> frozenset:
        key = (query, relevance_threshold, top_k)
        cached = self._cache.lookup(key)
        if cached is not None:
            return cached
        result = self._engine.result_set(
            query, relevance_threshold, top_k=top_k
        )
        self._cache.store(key, result)
        return result

    def __getattr__(self, name):
        return getattr(self._engine, name)


def incremental_preprocess(
    dataset: "SyntheticDataset",
    variant: "Variant",
    cache: ResultSetCache,
    config: PreprocessConfig | None = None,
) -> tuple[OCTInstance, PreprocessReport]:
    """:func:`repro.pipeline.preprocess` with memoized engine calls.

    Byte-identical output to a cold run on the same dataset; the only
    difference is that queries already staged in ``cache`` skip the
    search engine. Emits ``incremental.staging_hits`` /
    ``incremental.staging_misses`` counters for the run manifest.
    """
    tracer = get_tracer()
    hits0, misses0 = cache.hits, cache.misses
    staged = dataclasses.replace(
        dataset, engine=_MemoizingEngine(dataset.engine, cache)
    )
    with tracer.span("incremental.preprocess"):
        instance, report = preprocess(staged, variant, config)
    tracer.count("incremental.staging_hits", cache.hits - hits0)
    tracer.count("incremental.staging_misses", cache.misses - misses0)
    return instance, report
