"""Catalog deltas: the unit of change between two OCT instances.

A :class:`CatalogDelta` describes one refresh of the candidate-category
family — query sets *added*, *removed*, and *reweighted* — without
restating the unchanged sets. It is the vocabulary of the incremental
build pipeline (:mod:`repro.incremental.builder`): the churn simulator
emits deltas, ``apply`` materializes the next instance, and ``compose``
collapses a sequence of deltas into one (the algebra the property tests
pin: ``apply(apply(I, d1), d2) == apply(I, compose(d1, d2))``).

Deltas speak *set identity*, not position: a removed or reweighted set
is named by its sid, and an added set arrives as a full
:class:`~repro.core.input_sets.InputSet`. Separately,
:func:`match_instances` recovers the delta *between* two arbitrary
instances by content matching — the form the delta builder actually
consumes, because it also yields the sid rename map needed when the
upstream pipeline re-enumerates sids (preprocessing assigns sids by
position in the text-sorted merged list, so one added query shifts every
later sid without changing the sets themselves).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import ReproError
from repro.core.input_sets import InputSet, OCTInstance


class InvalidDeltaError(ReproError):
    """Raised when a delta does not fit the instance it is applied to."""


def _set_to_dict(q: InputSet) -> dict:
    return {
        "sid": q.sid,
        "items": sorted(q.items, key=str),
        "weight": q.weight,
        "threshold": q.threshold,
        "label": q.label,
        "source": q.source,
    }


def _set_from_dict(payload: dict) -> InputSet:
    return InputSet(
        sid=payload["sid"],
        items=frozenset(payload["items"]),
        weight=payload["weight"],
        threshold=payload.get("threshold"),
        label=payload.get("label", ""),
        source=payload.get("source", "query"),
    )


@dataclass(frozen=True)
class CatalogDelta:
    """One refresh step: sets added, removed (by sid), reweighted (by sid).

    Application order is removals first, then reweights (over the
    survivors), then additions — so a delta may legally remove a sid and
    add a different set under the same sid (a full replacement).
    """

    added: tuple[InputSet, ...] = ()
    removed: frozenset[int] = frozenset()
    reweighted: tuple[tuple[int, float], ...] = ()

    # -- basics -----------------------------------------------------------

    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.reweighted)

    @property
    def num_changes(self) -> int:
        return len(self.added) + len(self.removed) + len(self.reweighted)

    def reweight_map(self) -> dict[int, float]:
        return dict(self.reweighted)

    def validate(self, instance: OCTInstance) -> None:
        """Raise :class:`InvalidDeltaError` unless ``apply`` would succeed."""
        sids = {q.sid for q in instance.sets}
        unknown = set(self.removed) - sids
        if unknown:
            raise InvalidDeltaError(
                f"delta removes unknown sids {sorted(unknown)}"
            )
        reweights = self.reweight_map()
        bad = set(reweights) - (sids - set(self.removed))
        if bad:
            raise InvalidDeltaError(
                f"delta reweights missing or removed sids {sorted(bad)}"
            )
        for sid, weight in reweights.items():
            if weight < 0:
                raise InvalidDeltaError(
                    f"delta reweights sid {sid} to negative weight {weight}"
                )
        surviving = sids - set(self.removed)
        fresh = set()
        for q in self.added:
            if q.sid in surviving or q.sid in fresh:
                raise InvalidDeltaError(
                    f"delta adds duplicate sid {q.sid}"
                )
            fresh.add(q.sid)

    # -- application ------------------------------------------------------

    def apply(self, instance: OCTInstance) -> OCTInstance:
        """The instance after this delta (validates first).

        Survivors keep their position in the instance order; added sets
        are appended in delta order. The universe grows by the added
        sets' items (it never shrinks — absent items still need a home
        in the miscellaneous category); item bounds carry over.
        """
        self.validate(instance)
        reweights = self.reweight_map()
        sets: list[InputSet] = []
        for q in instance.sets:
            if q.sid in self.removed:
                continue
            if q.sid in reweights:
                q = InputSet(
                    sid=q.sid, items=q.items, weight=reweights[q.sid],
                    threshold=q.threshold, label=q.label, source=q.source,
                )
            sets.append(q)
        sets.extend(self.added)
        universe = set(instance.universe)
        for q in self.added:
            universe |= q.items
        return OCTInstance(
            sets,
            universe=universe,
            item_bounds={
                item: instance.bound(item)
                for item in instance.universe
                if instance.bound(item) != instance.default_bound
            },
            default_bound=instance.default_bound,
        )

    # -- algebra ----------------------------------------------------------

    def compose(self, later: "CatalogDelta") -> "CatalogDelta":
        """One delta equivalent to applying ``self`` then ``later``."""
        added_by_sid = {q.sid: q for q in self.added}
        later_reweights = later.reweight_map()

        # Sets this delta added: dropped again, reweighted, or kept.
        surviving_added: list[InputSet] = []
        for q in self.added:
            if q.sid in later.removed:
                continue
            if q.sid in later_reweights:
                q = InputSet(
                    sid=q.sid, items=q.items,
                    weight=later_reweights[q.sid],
                    threshold=q.threshold, label=q.label, source=q.source,
                )
            surviving_added.append(q)
        surviving_added.extend(later.added)

        removed = set(self.removed)
        removed |= {sid for sid in later.removed if sid not in added_by_sid}
        # A sid that was removed and later re-added stays in ``removed``
        # *and* appears in ``added`` (apply removes before adding).

        reweights: dict[int, float] = {}
        for sid, weight in self.reweighted:
            if sid in later.removed:
                continue
            reweights[sid] = weight
        for sid, weight in later.reweighted:
            if sid in added_by_sid:
                continue  # folded into the surviving added set above
            reweights[sid] = weight

        return CatalogDelta(
            added=tuple(surviving_added),
            removed=frozenset(removed),
            reweighted=tuple(sorted(reweights.items())),
        )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "added": [_set_to_dict(q) for q in self.added],
            "removed": sorted(self.removed),
            "reweighted": [[sid, w] for sid, w in sorted(self.reweighted)],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CatalogDelta":
        return cls(
            added=tuple(_set_from_dict(p) for p in payload.get("added", [])),
            removed=frozenset(payload.get("removed", [])),
            reweighted=tuple(
                (int(sid), float(w))
                for sid, w in payload.get("reweighted", [])
            ),
        )

    @classmethod
    def between(
        cls, old: OCTInstance, new: OCTInstance
    ) -> "CatalogDelta":
        """The delta turning ``old`` into ``new``, matching sets by sid.

        Sets whose sid survives with identical content but a different
        weight become reweights; content changes under one sid become a
        remove + add. For pipelines that renumber sids, use
        :func:`match_instances` instead — it matches by content and
        reports renames.
        """
        old_by_sid = {q.sid: q for q in old.sets}
        new_by_sid = {q.sid: q for q in new.sets}
        added: list[InputSet] = []
        removed: set[int] = set()
        reweighted: dict[int, float] = {}
        for sid, q in old_by_sid.items():
            other = new_by_sid.get(sid)
            if other is None:
                removed.add(sid)
            elif (q.items, q.threshold, q.label, q.source) != (
                other.items, other.threshold, other.label, other.source
            ):
                removed.add(sid)
                added.append(other)
            elif q.weight != other.weight:
                reweighted[sid] = other.weight
        for sid, q in new_by_sid.items():
            if sid not in old_by_sid:
                added.append(q)
        added.sort(key=lambda q: q.sid)
        return cls(
            added=tuple(added),
            removed=frozenset(removed),
            reweighted=tuple(sorted(reweighted.items())),
        )


@dataclass(frozen=True)
class InstanceMatch:
    """Content matching of two instances: the delta builder's currency.

    ``renames`` maps surviving old sids to their new sids (identity
    entries included); ``added``/``removed`` are the unmatched new/old
    sids; ``reweighted`` are surviving *new* sids whose weight changed.
    ``dirty`` — added plus reweighted, in new-sid space — is the seed of
    every invalidation in :mod:`repro.incremental.conflicts`.
    """

    renames: dict[int, int]
    added: frozenset[int]
    removed: frozenset[int]
    reweighted: frozenset[int]

    @property
    def dirty(self) -> frozenset[int]:
        return self.added | self.reweighted

    @property
    def num_changes(self) -> int:
        return len(self.added) + len(self.removed) + len(self.reweighted)


def _content_key(q: InputSet) -> tuple:
    return (q.items, q.threshold, q.label, q.source)


def match_instances(old: OCTInstance, new: OCTInstance) -> InstanceMatch:
    """Match two instances' sets by content (weight excluded).

    Duplicate content keys are matched pairwise in ascending sid order
    on both sides, which preserves the relative sid order of survivors —
    the property that keeps reused pair orientations valid (the
    incremental conflict update still re-checks orientation per pair, so
    even an adversarial renumbering only costs reclassification, never
    correctness).
    """
    old_groups: dict[tuple, list[InputSet]] = {}
    for q in sorted(old.sets, key=lambda q: q.sid):
        old_groups.setdefault(_content_key(q), []).append(q)
    renames: dict[int, int] = {}
    added: set[int] = set()
    reweighted: set[int] = set()
    for q in sorted(new.sets, key=lambda q: q.sid):
        group = old_groups.get(_content_key(q))
        if group:
            mate = group.pop(0)
            renames[mate.sid] = q.sid
            if mate.weight != q.weight:
                reweighted.add(q.sid)
        else:
            added.add(q.sid)
    removed = {
        q.sid for group in old_groups.values() for q in group
    }
    return InstanceMatch(
        renames=renames,
        added=frozenset(added),
        removed=frozenset(removed),
        reweighted=frozenset(reweighted),
    )
