"""Incremental maintenance of the 2-/3-conflict structure.

A delta touching ``k`` of ``n`` sets invalidates only the pairs and
triples incident to the *dirty* sids (added ∪ reweighted — reweights
matter because the ranking comparator breaks size ties by weight, and
:func:`~repro.conflicts.pairwise.can_cover_together` is asymmetric in
rank orientation). Everything else is relabeled from the previous
build's :class:`~repro.conflicts.two_conflicts.PairwiseAnalysis` instead
of re-derived, so the cost scales with the churned neighborhood, not
with all ``O(n²)`` intersecting pairs.

Reuse is guarded, not assumed:

* every relabeled pair re-derives its (upper, lower) orientation under
  the new ranking — a flip forces reclassification and marks both
  endpoints *triple-dirty*, because rank flips are exactly what can
  create or destroy 3-conflicts among otherwise-clean sets;
* every kept triple is re-validated against the new analysis with the
  verbatim rules of
  :func:`~repro.conflicts.three_conflicts._three_conflicts_reference`.

The differential churn suite (tests/test_incremental_differential.py)
pins the output equal to a from-scratch :func:`compute_pairwise` +
:func:`compute_three_conflicts` at every step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conflicts.pairwise import can_cover_separately, can_cover_together
from repro.conflicts.ranking import rank_sets
from repro.conflicts.three_conflicts import Triple
from repro.conflicts.two_conflicts import Pair, PairwiseAnalysis
from repro.core.input_sets import OCTInstance
from repro.core.variants import Variant
from repro.incremental.delta import InstanceMatch

_CONFLICT = "conflict"
_MUST = "must_together"
_SEPARATELY = "can_separately"


@dataclass
class PairwiseUpdateStats:
    """How much pairwise work the delta actually re-did."""

    reused: int = 0
    reclassified: int = 0
    added: int = 0
    dropped: int = 0

    @property
    def total(self) -> int:
        return self.reused + self.reclassified + self.added


@dataclass
class TripleUpdateStats:
    reused: int = 0
    recomputed: int = 0
    dropped: int = 0


def _old_class(analysis: PairwiseAnalysis, pair: Pair) -> str:
    if pair in analysis.conflicts:
        return _CONFLICT
    if pair in analysis.must_together:
        return _MUST
    return _SEPARATELY


def update_pairwise(
    old_analysis: PairwiseAnalysis,
    new_instance: OCTInstance,
    match: InstanceMatch,
    variant: Variant,
) -> tuple[PairwiseAnalysis, PairwiseUpdateStats, set[int]]:
    """Relabel the clean pairs, reclassify the dirty ones.

    Returns the new analysis (bit-identical in content to a from-scratch
    :func:`~repro.conflicts.two_conflicts.compute_pairwise`), update
    stats, and the set of *triple-dirty* sids — endpoints of pairs whose
    rank orientation or class changed, which the 3-conflict update must
    treat as dirty on top of ``match.dirty``.
    """
    ranking = rank_sets(new_instance)
    analysis = PairwiseAnalysis(ranking=ranking)
    stats = PairwiseUpdateStats()
    triple_dirty: set[int] = set()

    renames = match.renames
    dirty = match.dirty
    uniform_b1 = new_instance.uniform_bound() == 1

    buckets = {
        _CONFLICT: analysis.conflicts,
        _MUST: analysis.must_together,
        _SEPARATELY: analysis.can_separately,
    }

    def classify(a: int, b: int, shared: int) -> str:
        upper_sid, lower_sid = analysis.key(a, b)
        upper = new_instance.get(upper_sid)
        lower = new_instance.get(lower_sid)
        if uniform_b1:
            shared_b1 = shared
        else:
            shared_b1 = sum(
                1
                for item in upper.items & lower.items
                if new_instance.bound(item) == 1
            )
        delta_upper = new_instance.effective_threshold(upper, variant.delta)
        delta_lower = new_instance.effective_threshold(lower, variant.delta)
        separately = can_cover_separately(
            variant, upper, lower, delta_upper, delta_lower,
            shared_bound1=shared_b1,
        )
        together = can_cover_together(
            variant, upper, lower, delta_upper, delta_lower,
            intersection=shared,
        )
        pair = (upper_sid, lower_sid)
        analysis.intersections[pair] = shared
        if separately:
            cls = _SEPARATELY
        elif together:
            cls = _MUST
        else:
            cls = _CONFLICT
        buckets[cls].add(pair)
        return cls

    # 1. Old pairs: drop (endpoint removed), reclassify (endpoint dirty
    #    or orientation flipped), or relabel verbatim.
    for old_pair, shared in old_analysis.intersections.items():
        new_upper = renames.get(old_pair[0])
        new_lower = renames.get(old_pair[1])
        if new_upper is None or new_lower is None:
            stats.dropped += 1
            continue
        if new_upper in dirty or new_lower in dirty:
            classify(new_upper, new_lower, shared)
            stats.reclassified += 1
            continue
        if analysis.key(new_upper, new_lower) != (new_upper, new_lower):
            # The pair's rank orientation flipped even though neither
            # endpoint changed — a tie-order shift. Reclassify (the
            # together-rule is orientation-sensitive) and let the triple
            # update re-derive everything these sids participate in.
            triple_dirty.add(new_upper)
            triple_dirty.add(new_lower)
            classify(new_upper, new_lower, shared)
            stats.reclassified += 1
            continue
        cls = _old_class(old_analysis, old_pair)
        pair = (new_upper, new_lower)
        analysis.intersections[pair] = shared
        buckets[cls].add(pair)
        stats.reused += 1

    # 2. New pairs: every intersecting pair with an added endpoint.
    #    (Removed/reweighted sets keep their items, so no other new
    #    pairs can exist.)
    if match.added:
        index = new_instance.sets_containing()
        seen: set[tuple[int, int]] = set()
        for sid in sorted(match.added):
            q = new_instance.get(sid)
            partners: set[int] = set()
            for item in q.items:
                for other in index.get(item, ()):
                    if other.sid != sid:
                        partners.add(other.sid)
            for partner in partners:
                undirected = (min(sid, partner), max(sid, partner))
                if undirected in seen:
                    continue
                seen.add(undirected)
                shared = len(q.items & new_instance.get(partner).items)
                classify(sid, partner, shared)
                stats.added += 1

    return analysis, stats, triple_dirty


def _triple_still_valid(
    a: int, b: int, c: int, analysis: PairwiseAnalysis
) -> bool:
    """The reference 3-conflict rules, applied to one candidate triple."""
    rank_of = analysis.ranking.rank_of
    for middle, x, y in ((a, b, c), (b, a, c), (c, a, b)):
        if not (
            analysis.is_must_together(middle, x)
            and analysis.is_must_together(middle, y)
        ):
            continue
        first = x if rank_of[x] < rank_of[y] else y
        third = y if first is x else x
        if rank_of[middle] < rank_of[first]:
            continue
        if analysis.is_must_together(first, third):
            continue
        if analysis.is_conflict(first, third):
            continue
        return True
    return False


def update_three_conflicts(
    old_triples: set[Triple],
    analysis: PairwiseAnalysis,
    match: InstanceMatch,
    triple_dirty: set[int],
) -> tuple[set[Triple], TripleUpdateStats]:
    """Carry over clean triples, re-enumerate around dirty sids.

    ``triple_dirty`` comes from :func:`update_pairwise`; the effective
    dirty set is its union with ``match.dirty``. A triple is kept only
    if all members are clean *and* it still passes the verbatim
    reference rules under the new analysis; new triples are found by
    replaying the reference enumeration restricted to middles adjacent
    to a dirty sid.
    """
    stats = TripleUpdateStats()
    rank_of = analysis.ranking.rank_of
    renames = match.renames
    dirty = set(match.dirty) | set(triple_dirty)
    adjacency = analysis.must_neighbors()

    triples: set[Triple] = set()
    for tri in old_triples:
        mapped = tuple(renames.get(sid) for sid in tri)
        if any(sid is None for sid in mapped):
            stats.dropped += 1
            continue
        if any(sid in dirty for sid in mapped):
            stats.dropped += 1  # re-derived below if still real
            continue
        if not _triple_still_valid(*mapped, analysis):
            stats.dropped += 1
            continue
        triples.add(tuple(sorted(mapped, key=lambda sid: rank_of[sid])))
        stats.reused += 1

    # Local re-enumeration: a triple with a dirty member has its middle
    # either dirty or must-adjacent to a dirty sid.
    mids = set(dirty)
    for sid in dirty:
        mids |= adjacency.get(sid, set())
    for middle in mids:
        neighbors = adjacency.get(middle, set())
        if len(neighbors) < 2:
            continue
        middle_dirty = middle in dirty
        ordered = sorted(neighbors, key=lambda sid: rank_of[sid])
        for i, first in enumerate(ordered):
            for third in ordered[i + 1 :]:
                if not (
                    middle_dirty or first in dirty or third in dirty
                ):
                    continue
                if rank_of[middle] < rank_of[first]:
                    continue
                if analysis.is_must_together(first, third):
                    continue
                if analysis.is_conflict(first, third):
                    continue
                tri = tuple(
                    sorted(
                        (first, middle, third),
                        key=lambda sid: rank_of[sid],
                    )
                )
                if tri not in triples:
                    stats.recomputed += 1
                    triples.add(tri)

    return triples, stats
