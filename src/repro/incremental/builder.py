"""Delta-aware CTCR builds: full once, then churned-neighborhood work.

:class:`IncrementalBuilder` wraps :class:`~repro.algorithms.CTCR` with a
carry-over :class:`BuildState`: the previous instance, its pairwise
analysis and 3-conflict set, and a payload-keeping MIS component cache.
A *full* build populates the state from scratch (and measures its own
wall time — the honest baseline a delta build reports its speedup
against); a *delta* build matches the new instance against the state by
content, relabels everything clean, reclassifies only the dirty
neighborhood (:mod:`repro.incremental.conflicts`), seeds the component
cache across the sid rename (:meth:`MISComponentCache.seed_from_payload`),
and hands the result to ``CTCR.build(reuse=...)``.

The output tree is byte-identical to a from-scratch build — delta mode
is an optimization, never an approximation. The differential churn
suite (tests/test_incremental_differential.py) enforces this at every
step of randomized 200-step delta sequences.

Every delta build stamps ``incremental.*`` gauges on the active tracer,
so run manifests record how much work was actually reused.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algorithms.ctcr import CTCR, BuildReuse, CTCRConfig
from repro.conflicts.ranking import rank_sets
from repro.conflicts.three_conflicts import Triple, compute_three_conflicts
from repro.conflicts.two_conflicts import PairwiseAnalysis, compute_pairwise
from repro.core.exceptions import ReproError
from repro.core.input_sets import OCTInstance
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.incremental.conflicts import (
    update_pairwise,
    update_three_conflicts,
)
from repro.incremental.delta import InstanceMatch, match_instances
from repro.mis.cache import MISComponentCache
from repro.mis.hypergraph_mis import DEFAULT_MAX_EXACT_COMPONENT
from repro.observability import get_tracer
from repro.observability.manifest import instance_fingerprint


class DeltaMismatchError(ReproError):
    """The carried state does not fit this build (variant/config drift).

    Callers treat this as "fall back to a full rebuild" — the serving
    layer counts the fallback and rebuilds from scratch.
    """


@dataclass
class BuildState:
    """Everything a later delta build can reuse from this build."""

    fingerprint: str
    variant: Variant
    instance: OCTInstance
    analysis: PairwiseAnalysis
    triples: set[Triple]
    mis_cache: MISComponentCache
    full_build_wall_s: float

    def matches(self, instance: OCTInstance) -> bool:
        """True when ``instance`` is exactly the state's base instance."""
        return instance_fingerprint(instance)["sha256"] == self.fingerprint


@dataclass
class DeltaBuildResult:
    tree: CategoryTree
    state: BuildState
    counters: dict[str, float] = field(default_factory=dict)


class IncrementalBuilder:
    """CTCR with cross-build reuse of conflicts and MIS components."""

    def __init__(self, config: CTCRConfig | None = None) -> None:
        self.config = config or CTCRConfig()

    # -- knobs shared with the component cache key ------------------------

    def _cache_knobs(self) -> tuple[int, bool, int]:
        mis = self.config.mis
        return (
            mis.hyper_node_budget,
            mis.exact,
            DEFAULT_MAX_EXACT_COMPONENT,
        )

    def _uses_triples(self, variant: Variant) -> bool:
        return not variant.is_exact and self.config.use_three_conflicts

    # -- builds -----------------------------------------------------------

    def full_build(
        self, instance: OCTInstance, variant: Variant
    ) -> tuple[CategoryTree, BuildState]:
        """From-scratch build that also captures the reusable state."""
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("incremental.full_build"):
            ranking = rank_sets(instance)
            analysis = compute_pairwise(
                instance,
                variant,
                ranking,
                n_jobs=self.config.n_jobs,
                use_bitset=self.config.use_bitset,
            )
            triples: set[Triple] = set()
            if self._uses_triples(variant):
                triples = compute_three_conflicts(analysis)
            cache = MISComponentCache(keep_payloads=True)
            tree = CTCR(self.config).build(
                instance,
                variant,
                reuse=BuildReuse(
                    analysis=analysis,
                    triples=triples if self._uses_triples(variant) else None,
                    mis_cache=cache,
                ),
            )
        wall = time.perf_counter() - start
        state = BuildState(
            fingerprint=instance_fingerprint(instance)["sha256"],
            variant=variant,
            instance=instance,
            analysis=analysis,
            triples=triples,
            mis_cache=cache,
            full_build_wall_s=wall,
        )
        return tree, state

    def delta_build(
        self,
        state: BuildState,
        new_instance: OCTInstance,
        variant: Variant,
        match: InstanceMatch | None = None,
    ) -> DeltaBuildResult:
        """Build the new instance's tree, reusing the carried state.

        ``match`` may be supplied when the caller already knows the
        old→new correspondence; by default it is recovered by content
        matching. Raises :class:`DeltaMismatchError` when the state was
        produced under a different variant — the caller falls back to
        :meth:`full_build`.
        """
        if variant != state.variant:
            raise DeltaMismatchError(
                f"carried state was built for variant {state.variant}, "
                f"delta build requested {variant}"
            )
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("incremental.delta_build"):
            if match is None:
                match = match_instances(state.instance, new_instance)
            analysis, pair_stats, triple_dirty = update_pairwise(
                state.analysis, new_instance, match, variant
            )
            triples: set[Triple] = set()
            triple_stats = None
            if self._uses_triples(variant):
                triples, triple_stats = update_three_conflicts(
                    state.triples, analysis, match, triple_dirty
                )
            cache = MISComponentCache(keep_payloads=True)
            node_budget, exact, max_exact = self._cache_knobs()
            seeded = cache.seed_from_payload(
                state.mis_cache.to_payload_dict(),
                sid_map=match.renames,
                node_budget=node_budget,
                exact=exact,
                max_exact_component=max_exact,
            )
            tree = CTCR(self.config).build(
                new_instance,
                variant,
                reuse=BuildReuse(
                    analysis=analysis,
                    triples=triples if self._uses_triples(variant) else None,
                    mis_cache=cache,
                ),
            )
        wall = time.perf_counter() - start

        counters: dict[str, float] = {
            "incremental.sets_added": len(match.added),
            "incremental.sets_removed": len(match.removed),
            "incremental.sets_reweighted": len(match.reweighted),
            "incremental.pairs_reused": pair_stats.reused,
            "incremental.pairs_reclassified": pair_stats.reclassified,
            "incremental.pairs_added": pair_stats.added,
            "incremental.pairs_dropped": pair_stats.dropped,
            "incremental.components_seeded": seeded,
            "incremental.components_reused": cache.hits,
            "incremental.components_resolved": cache.misses,
            "incremental.delta_wall_s": wall,
            "incremental.est_full_wall_s": state.full_build_wall_s,
        }
        if triple_stats is not None:
            counters["incremental.triples_reused"] = triple_stats.reused
            counters["incremental.triples_recomputed"] = (
                triple_stats.recomputed
            )
            counters["incremental.triples_dropped"] = triple_stats.dropped
        for name, value in counters.items():
            tracer.gauge(name, value)

        new_state = BuildState(
            fingerprint=instance_fingerprint(new_instance)["sha256"],
            variant=variant,
            instance=new_instance,
            analysis=analysis,
            triples=triples,
            mis_cache=cache,
            # Full-build cost drifts slowly with instance size; the
            # carried estimate is the last *measured* full build.
            full_build_wall_s=state.full_build_wall_s,
        )
        return DeltaBuildResult(tree=tree, state=new_state, counters=counters)
