"""Source-contribution analysis (paper Table 1).

The conservative-update workflow adds the existing tree's categories as
input sets alongside query result sets; modulating the weight ratio
between the two sources should translate into roughly the same ratio of
score contributions — that is what makes weight tuning an effective
control over how much the tree may change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import TreeBuilder
from repro.core.input_sets import InputSet, OCTInstance
from repro.core.scoring import score_tree
from repro.core.variants import Variant


@dataclass(frozen=True)
class ContributionRow:
    """One Table 1 row: a weight ratio and the resulting score split."""

    query_weight_share: float
    query_score_share: float
    existing_score_share: float
    normalized_score: float


def reweight_sources(
    instance: OCTInstance, query_share: float
) -> OCTInstance:
    """Scale weights so the sources' total weights have the given ratio.

    ``query_share`` is the fraction (0..1) of the total weight carried by
    ``source == 'query'`` sets; everything else is scaled to carry the
    complement. Relative weights within each source are preserved.
    """
    if not 0.0 < query_share < 1.0:
        raise ValueError("query_share must be strictly between 0 and 1")
    query_total = sum(q.weight for q in instance if q.source == "query")
    other_total = sum(q.weight for q in instance if q.source != "query")
    if query_total <= 0 or other_total <= 0:
        raise ValueError("both sources must carry positive weight")
    query_factor = query_share / query_total
    other_factor = (1.0 - query_share) / other_total
    reweighted = [
        InputSet(
            sid=q.sid,
            items=q.items,
            weight=q.weight
            * (query_factor if q.source == "query" else other_factor),
            threshold=q.threshold,
            label=q.label,
            source=q.source,
        )
        for q in instance
    ]
    return OCTInstance(
        reweighted,
        universe=instance.universe,
        default_bound=instance.default_bound,
    )


def contribution_table(
    builder: TreeBuilder,
    instance: OCTInstance,
    variant: Variant,
    query_shares: list[float] = (0.9, 0.7, 0.5, 0.3, 0.1),
) -> list[ContributionRow]:
    """Reproduce Table 1 for a mixed query/existing-category instance."""
    rows = []
    for share in query_shares:
        mixed = reweight_sources(instance, share)
        tree = builder.build(mixed, variant)
        report = score_tree(tree, mixed, variant)
        by_source = report.score_by_source(mixed)
        total = sum(by_source.values())
        query_part = by_source.get("query", 0.0)
        existing_part = total - query_part
        rows.append(
            ContributionRow(
                query_weight_share=share,
                query_score_share=query_part / total if total else 0.0,
                existing_score_share=existing_part / total if total else 0.0,
                normalized_score=report.normalized,
            )
        )
    return rows
