"""Train/test robustness evaluation (paper Section 5.2, Figure 8d).

The input sets are randomly split in half; the tree is built over the
training half and scored against the held-out half, repeated over many
random partitions. Scores are expectedly lower than in-sample, but the
algorithm ranking should persist.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.algorithms.base import TreeBuilder
from repro.core.input_sets import OCTInstance
from repro.core.scoring import score_tree
from repro.core.variants import Variant
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class TrainTestResult:
    """Aggregated held-out performance of one algorithm."""

    name: str
    mean_test_score: float
    std_test_score: float
    mean_train_score: float
    repetitions: int


def split_instance(
    instance: OCTInstance, rng
) -> tuple[OCTInstance, OCTInstance]:
    """A random equal-cardinality train/test partition of the input sets."""
    sids = [q.sid for q in instance]
    rng.shuffle(sids)
    half = len(sids) // 2
    train = instance.restricted_to(sids[:half])
    test = instance.restricted_to(sids[half:])
    return train, test


def train_test_evaluation(
    builders: list[TreeBuilder],
    instance: OCTInstance,
    variant: Variant,
    repetitions: int = 5,
    seed: int = 0,
) -> list[TrainTestResult]:
    """Average held-out normalized score over random splits."""
    rng = make_rng(seed)
    test_scores: dict[str, list[float]] = {b.name: [] for b in builders}
    train_scores: dict[str, list[float]] = {b.name: [] for b in builders}
    for _ in range(repetitions):
        train, test = split_instance(instance, rng)
        for builder in builders:
            tree = builder.build(train, variant)
            train_scores[builder.name].append(
                score_tree(tree, train, variant).normalized
            )
            test_scores[builder.name].append(
                score_tree(tree, test, variant).normalized
            )
    results = []
    for builder in builders:
        scores = test_scores[builder.name]
        results.append(
            TrainTestResult(
                name=builder.name,
                mean_test_score=statistics.fmean(scores),
                std_test_score=(
                    statistics.stdev(scores) if len(scores) > 1 else 0.0
                ),
                mean_train_score=statistics.fmean(train_scores[builder.name]),
                repetitions=repetitions,
            )
        )
    results.sort(key=lambda r: -r.mean_test_score)
    return results
