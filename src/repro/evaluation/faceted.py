"""Faceted-search effort (paper Section 2.2, Perfect-Recall motivation).

The Perfect-Recall variant exists because faceted search lets a user
land on a broad category and *filter down*: a cover with recall 1 and
moderate precision is fine when the filtering interface can strip the
extras. This module quantifies that claim: given a covering category and
the item attributes, how many facet filters does a user need to isolate
(a superset close to) her target set?

A filter step picks the single attribute=value predicate that removes
the most non-target items while keeping every target item. The *effort*
of a cover is the number of steps until precision reaches the goal (or
no safe filter remains).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.products import Product
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.core.input_sets import OCTInstance
from repro.core.scoring import score_tree


@dataclass(frozen=True)
class FacetPath:
    """The filtering session for one input set."""

    sid: int
    start_cid: int | None
    steps: tuple[str, ...]  # "attribute=value" predicates applied
    start_precision: float
    final_precision: float
    reached_goal: bool


def _filter_once(
    current: set[str],
    target: frozenset,
    attributes: dict[str, dict[str, str]],
) -> tuple[str, set[str]] | None:
    """The best single safe filter, or None when nothing helps."""
    # Candidate predicates: values shared by *all* target items.
    shared: dict[str, str] = {}
    target_list = [i for i in target if i in attributes]
    if not target_list:
        return None
    first = attributes[target_list[0]]
    for name, value in first.items():
        if all(attributes[i].get(name) == value for i in target_list[1:]):
            shared[name] = value
    best: tuple[str, set[str]] | None = None
    for name, value in sorted(shared.items()):
        kept = {
            i
            for i in current
            if i in target or attributes.get(i, {}).get(name) == value
        }
        if len(kept) < len(current) and (
            best is None or len(kept) < len(best[1])
        ):
            best = (f"{name}={value}", kept)
    return best


def facet_effort(
    tree: CategoryTree,
    instance: OCTInstance,
    variant: Variant,
    products: list[Product],
    precision_goal: float = 0.9,
    max_steps: int = 5,
) -> list[FacetPath]:
    """Simulate a facet-filtering session per covered input set."""
    attributes = {p.pid: p.attributes for p in products}
    report = score_tree(tree, instance, variant)
    by_cid = {cat.cid: cat for cat in tree.categories()}
    paths = []
    for q in instance:
        entry = report.per_set[q.sid]
        if not entry.covered or entry.best_cid is None:
            continue
        cat = by_cid[entry.best_cid]
        current = set(cat.items)
        target = q.items
        inter = len(target & current)
        start_precision = inter / len(current) if current else 0.0
        precision = start_precision
        steps: list[str] = []
        while precision < precision_goal and len(steps) < max_steps:
            move = _filter_once(current, target, attributes)
            if move is None:
                break
            predicate, kept = move
            steps.append(predicate)
            current = kept
            inter = len(target & current)
            precision = inter / len(current) if current else 0.0
        paths.append(
            FacetPath(
                sid=q.sid,
                start_cid=entry.best_cid,
                steps=tuple(steps),
                start_precision=start_precision,
                final_precision=precision,
                reached_goal=precision >= precision_goal,
            )
        )
    return paths


def mean_effort(paths: list[FacetPath]) -> float:
    """Average number of filter steps over the successful sessions."""
    done = [p for p in paths if p.reached_goal]
    if not done:
        return 0.0
    return sum(len(p.steps) for p in done) / len(done)
