"""Head-to-head algorithm comparison (the Figure 8a/8b/8c/8e experiments)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import TreeBuilder
from repro.core.input_sets import OCTInstance
from repro.core.scoring import ScoreReport, score_tree
from repro.core.tree import CategoryTree
from repro.core.variants import Variant
from repro.utils.timer import Timer


@dataclass(frozen=True)
class AlgorithmResult:
    """One algorithm's outcome on one instance/variant."""

    name: str
    normalized_score: float
    covered_count: int
    covered_weight: float
    num_categories: int
    seconds: float


def run_comparison(
    builders: list[TreeBuilder],
    instance: OCTInstance,
    variant: Variant,
    validate: bool = True,
) -> list[AlgorithmResult]:
    """Build and score a tree per algorithm; rows sorted best-first."""
    rows = []
    for builder in builders:
        with Timer() as timer:
            tree = builder.build(instance, variant)
        if validate:
            tree.validate(universe=instance.universe, bound=instance.bound)
        report = score_tree(tree, instance, variant)
        rows.append(
            AlgorithmResult(
                name=builder.name,
                normalized_score=report.normalized,
                covered_count=report.covered_count,
                covered_weight=report.covered_weight,
                num_categories=len(tree),
                seconds=timer.elapsed,
            )
        )
    rows.sort(key=lambda r: -r.normalized_score)
    return rows


def evaluate_tree(
    tree: CategoryTree, instance: OCTInstance, variant: Variant
) -> ScoreReport:
    """Thin convenience wrapper mirroring :func:`score_tree`."""
    return score_tree(tree, instance, variant)
