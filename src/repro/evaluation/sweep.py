"""Threshold sweeps (paper Figures 8g and 8h).

CTCR's score rises monotonically (in expectation) as the threshold drops
— lower thresholds admit more covers — and is locally flat around the
taxonomists' preferred delta = 0.8, which is what made tuning easy in
the user study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import TreeBuilder
from repro.core.input_sets import OCTInstance
from repro.core.scoring import score_tree
from repro.core.variants import Variant


@dataclass(frozen=True)
class SweepPoint:
    """One (delta, score) point of a threshold sweep."""

    delta: float
    normalized_score: float
    covered_count: int


def threshold_sweep(
    builder: TreeBuilder,
    instance: OCTInstance,
    variant: Variant,
    deltas: list[float],
) -> list[SweepPoint]:
    """Score a builder across thresholds of the same variant family."""
    points = []
    for delta in deltas:
        v = variant.with_delta(delta)
        tree = builder.build(instance, v)
        report = score_tree(tree, instance, v)
        points.append(
            SweepPoint(
                delta=delta,
                normalized_score=report.normalized,
                covered_count=report.covered_count,
            )
        )
    return points


def delta_range(start: float, stop: float, step: float) -> list[float]:
    """Inclusive float range with stable rounding (0.5..1.0 by 0.01 etc.)."""
    deltas = []
    value = start
    while value <= stop + 1e-9:
        deltas.append(round(value, 6))
        value += step
    return deltas
