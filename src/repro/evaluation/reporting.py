"""Plain-text reporting for benchmark output.

Every benchmark prints the series/rows the paper's figure or table
reports, alongside the paper's qualitative expectation, so the console
output doubles as the EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(cells):
        line = "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def print_experiment(
    title: str,
    paper_expectation: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render and print one experiment block; returns the text."""
    block = "\n".join(
        [
            "",
            f"=== {title} ===",
            f"paper: {paper_expectation}",
            format_table(headers, rows),
        ]
    )
    print(block)
    return block
