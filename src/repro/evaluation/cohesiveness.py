"""Category cohesiveness via title TF-IDF similarity (paper Section 5.4).

The paper confirms CTCR's categories are as semantically cohesive as the
manually built tree by computing the average pairwise TF-IDF similarity
of product titles within each category (0.52 vs 0.49 uniform-averaged,
0.45 for both when weighting by category size).

With L2-normalized vectors, the mean pairwise cosine within a category
of n items is ``(|sum v|^2 - n) / (n (n - 1))`` — no quadratic loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tree import CategoryTree
from repro.embeddings.text import tfidf_vectors


def _mean_pairwise_cosine(vectors: list[dict[str, float]]) -> float:
    n = len(vectors)
    if n < 2:
        return 1.0
    total: dict[str, float] = {}
    norm_sq_sum = 0.0
    for vec in vectors:
        for token, value in vec.items():
            total[token] = total.get(token, 0.0) + value
        norm_sq_sum += sum(v * v for v in vec.values())
    sum_norm_sq = sum(v * v for v in total.values())
    return (sum_norm_sq - norm_sq_sum) / (n * (n - 1))


@dataclass(frozen=True)
class CohesivenessReport:
    """Average within-category title similarity of one tree."""

    uniform_average: float
    size_weighted_average: float
    categories_measured: int


def tree_cohesiveness(
    tree: CategoryTree,
    titles: dict,
    min_size: int = 2,
    leaf_only: bool = True,
) -> CohesivenessReport:
    """Cohesiveness of a tree's (leaf) categories.

    Leaf categories are the user-facing granularity; internal categories
    mix their children by construction, so measuring them would penalize
    breadth rather than cohesion.
    """
    item_list = sorted(titles, key=str)
    vectors = tfidf_vectors([titles[item] for item in item_list])
    vec_of = dict(zip(item_list, vectors))
    cats = tree.leaves() if leaf_only else list(tree.non_root_categories())
    per_category: list[tuple[float, int]] = []
    for cat in cats:
        members = [vec_of[item] for item in cat.items if item in vec_of]
        if len(members) < min_size:
            continue
        per_category.append((_mean_pairwise_cosine(members), len(members)))
    if not per_category:
        return CohesivenessReport(0.0, 0.0, 0)
    uniform = sum(score for score, _n in per_category) / len(per_category)
    total_items = sum(n for _score, n in per_category)
    weighted = (
        sum(score * n for score, n in per_category) / total_items
    )
    return CohesivenessReport(
        uniform_average=uniform,
        size_weighted_average=weighted,
        categories_measured=len(per_category),
    )
