"""Navigability metrics and navigation aids (paper Section 2.3).

The algorithms output the minimal number of categories needed for their
score; taxonomists then add intermediate categories to ease navigation,
which the model allows "without affecting the score" — an intermediate
node containing the union of some siblings adds a cover candidate and
can only help. This module measures a tree's navigability and provides
the score-safe fan-out splitter taxonomists would apply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.tree import Category, CategoryTree


@dataclass(frozen=True)
class NavigationReport:
    """Structural navigability measures of a tree."""

    num_categories: int
    max_depth: int
    mean_leaf_depth: float
    max_fanout: int
    mean_fanout: float  # over internal nodes
    mean_leaf_size: float

    @property
    def click_estimate(self) -> float:
        """Rough browse cost: scanning fanout choices along a mean path."""
        return self.mean_leaf_depth * max(1.0, self.mean_fanout) / 2.0


def navigation_report(tree: CategoryTree) -> NavigationReport:
    """Compute the structural navigability measures."""
    leaves = tree.leaves()
    internal = [c for c in tree.categories() if c.children]
    fanouts = [len(c.children) for c in internal]
    leaf_depths = [c.depth for c in leaves]
    leaf_sizes = [len(c.items) for c in leaves]
    return NavigationReport(
        num_categories=len(tree),
        max_depth=max(leaf_depths, default=0),
        mean_leaf_depth=(
            sum(leaf_depths) / len(leaf_depths) if leaf_depths else 0.0
        ),
        max_fanout=max(fanouts, default=0),
        mean_fanout=sum(fanouts) / len(fanouts) if fanouts else 0.0,
        mean_leaf_size=(
            sum(leaf_sizes) / len(leaf_sizes) if leaf_sizes else 0.0
        ),
    )


def add_navigation_categories(
    tree: CategoryTree, max_children: int = 12
) -> int:
    """Split oversized fan-outs with intermediate grouping nodes.

    Children of a node with more than ``max_children`` children are
    packed (in label order) into intermediate categories of at most
    ``max_children`` each. Each new node holds the union of its group —
    a valid intermediate category, so validity and scores are preserved
    (an extra union node can only add cover candidates). Returns the
    number of nodes inserted.
    """
    if max_children < 2:
        raise ValueError("max_children must be at least 2")
    added = 0
    queue: list[Category] = [tree.root]
    while queue:
        node = queue.pop()
        while len(node.children) > max_children:
            ordered = sorted(
                node.children, key=lambda c: (c.label, c.cid)
            )
            group_size = max_children
            n_groups = math.ceil(len(ordered) / group_size)
            if n_groups < 2:
                break
            for g in range(n_groups):
                group = ordered[g * group_size : (g + 1) * group_size]
                if len(group) < 2:
                    continue
                first = group[0].label or "…"
                last = group[-1].label or "…"
                tree.insert_parent(group, label=f"{first} – {last}")
                added += 1
        queue.extend(node.children)
    return added
