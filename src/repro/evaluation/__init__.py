"""Evaluation harness: comparisons, robustness, Table 1, cohesiveness."""

from repro.evaluation.cohesiveness import CohesivenessReport, tree_cohesiveness
from repro.evaluation.faceted import FacetPath, facet_effort, mean_effort
from repro.evaluation.navigation import (
    NavigationReport,
    add_navigation_categories,
    navigation_report,
)
from repro.evaluation.tree_diff import CategoryMatch, TreeDiff, diff_trees
from repro.evaluation.compare import (
    AlgorithmResult,
    evaluate_tree,
    run_comparison,
)
from repro.evaluation.contribution import (
    ContributionRow,
    contribution_table,
    reweight_sources,
)
from repro.evaluation.reporting import format_table, print_experiment
from repro.evaluation.sweep import SweepPoint, delta_range, threshold_sweep
from repro.evaluation.train_test import (
    TrainTestResult,
    split_instance,
    train_test_evaluation,
)

__all__ = [
    "AlgorithmResult",
    "CategoryMatch",
    "CohesivenessReport",
    "ContributionRow",
    "FacetPath",
    "NavigationReport",
    "SweepPoint",
    "TrainTestResult",
    "TreeDiff",
    "add_navigation_categories",
    "contribution_table",
    "delta_range",
    "diff_trees",
    "evaluate_tree",
    "facet_effort",
    "format_table",
    "mean_effort",
    "navigation_report",
    "print_experiment",
    "reweight_sources",
    "run_comparison",
    "split_instance",
    "threshold_sweep",
    "train_test_evaluation",
    "tree_cohesiveness",
]
