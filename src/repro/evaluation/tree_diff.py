"""Structural tree comparison for conservative updates (Section 2.3).

"An important concern is ensuring that the new tree would not be
radically different, to maintain consistency." This module quantifies
how different two trees are, so the weight knob of the continual-update
workflow (Table 1) can be checked against what taxonomists actually
care about: how many categories survived, and how many items moved.

Categories are matched greedily by Jaccard similarity of their item
sets (best match first); unmatched categories count as added/removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.similarity import jaccard
from repro.core.tree import CategoryTree


@dataclass(frozen=True)
class CategoryMatch:
    """One matched category pair across the two trees."""

    old_cid: int
    new_cid: int
    similarity: float


@dataclass(frozen=True)
class TreeDiff:
    """Summary of the structural difference between two trees."""

    matches: tuple[CategoryMatch, ...]
    removed_cids: tuple[int, ...]  # only in the old tree
    added_cids: tuple[int, ...]  # only in the new tree
    mean_matched_similarity: float
    item_stability: float  # fraction of items keeping a similar home

    @property
    def survival_rate(self) -> float:
        """Fraction of old categories with a counterpart in the new tree."""
        total = len(self.matches) + len(self.removed_cids)
        return len(self.matches) / total if total else 1.0


def diff_trees(
    old: CategoryTree,
    new: CategoryTree,
    min_similarity: float = 0.5,
) -> TreeDiff:
    """Match categories across two trees and summarize the changes.

    Only non-root categories participate. A pair is a match when its
    Jaccard similarity reaches ``min_similarity``; matching is greedy
    best-first, one-to-one.
    """
    old_cats = [c for c in old.non_root_categories() if c.items]
    new_cats = [c for c in new.non_root_categories() if c.items]

    candidates: list[tuple[float, int, int]] = []
    # Inverted index over new categories for sparse candidate generation.
    item_to_new: dict = {}
    for j, cat in enumerate(new_cats):
        for item in cat.items:
            item_to_new.setdefault(item, []).append(j)
    for i, old_cat in enumerate(old_cats):
        seen: set[int] = set()
        for item in old_cat.items:
            seen.update(item_to_new.get(item, ()))
        for j in seen:
            sim = jaccard(old_cat.items, new_cats[j].items)
            if sim >= min_similarity:
                candidates.append((sim, i, j))
    candidates.sort(key=lambda t: (-t[0], t[1], t[2]))

    used_old: set[int] = set()
    used_new: set[int] = set()
    matches: list[CategoryMatch] = []
    for sim, i, j in candidates:
        if i in used_old or j in used_new:
            continue
        used_old.add(i)
        used_new.add(j)
        matches.append(
            CategoryMatch(
                old_cid=old_cats[i].cid,
                new_cid=new_cats[j].cid,
                similarity=sim,
            )
        )

    removed = tuple(
        old_cats[i].cid for i in range(len(old_cats)) if i not in used_old
    )
    added = tuple(
        new_cats[j].cid for j in range(len(new_cats)) if j not in used_new
    )
    mean_sim = (
        sum(m.similarity for m in matches) / len(matches) if matches else 0.0
    )

    # Item stability: an item is stable when one of its most-specific
    # old categories matched a new category still containing it.
    matched_new_by_old = {m.old_cid: m.new_cid for m in matches}
    new_items_by_cid = {
        c.cid: c.items for c in new.non_root_categories()
    }
    old_minimal: dict = {}
    for cat in old.non_root_categories():
        child_items: set = set()
        for child in cat.children:
            child_items |= child.items
        for item in cat.items - child_items:
            old_minimal.setdefault(item, []).append(cat.cid)
    stable = 0
    for item, cids in old_minimal.items():
        for cid in cids:
            new_cid = matched_new_by_old.get(cid)
            if new_cid is not None and item in new_items_by_cid.get(new_cid, ()):
                stable += 1
                break
    stability = stable / len(old_minimal) if old_minimal else 1.0

    return TreeDiff(
        matches=tuple(matches),
        removed_cids=removed,
        added_cids=added,
        mean_matched_similarity=mean_sim,
        item_stability=stability,
    )
