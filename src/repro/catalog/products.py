"""Synthetic product generation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.attributes import DomainSchema
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class Product:
    """One catalog item: an id, its attribute values, and a title."""

    pid: str
    domain: str
    attributes: dict[str, str]
    title: str

    def __hash__(self) -> int:  # dataclass with dict field
        return hash(self.pid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Product) and other.pid == self.pid


def _make_title(
    schema: DomainSchema, attributes: dict[str, str], rng
) -> str:
    """Compose a title from attribute values plus occasional noise.

    The head attribute (product type) always appears, last — matching
    how real listings read ("black adidas cotton shirt"); other values
    appear with their attribute's ``in_title_probability``.
    """
    words: list[str] = []
    for attr in schema.attributes:
        if attr.name == schema.head_attribute or attr.name not in attributes:
            continue
        if rng.random() < attr.in_title_probability:
            words.append(attributes[attr.name])
    rng.shuffle(words)
    if rng.random() < 0.35:
        words.insert(
            rng.randrange(len(words) + 1), rng.choice(schema.noise_tokens)
        )
    words.append(attributes[schema.head_attribute])
    return " ".join(words)


def generate_products(
    schema: DomainSchema, count: int, seed: int = 0
) -> list[Product]:
    """Generate ``count`` products with Zipf-skewed attribute values.

    The head attribute (product type) is drawn first; conditional
    attributes are only assigned when they apply to that type.
    """
    rng = make_rng(seed)
    value_choices = {
        attr.name: (list(attr.values), attr.weights())
        for attr in schema.attributes
    }
    head_attr = schema.attribute(schema.head_attribute)
    products = []
    for i in range(count):
        head_values, head_weights = value_choices[head_attr.name]
        head = rng.choices(head_values, weights=head_weights, k=1)[0]
        attributes = {head_attr.name: head}
        for attr in schema.attributes:
            if attr.name == head_attr.name or not attr.applicable(head):
                continue
            values, weights = value_choices[attr.name]
            attributes[attr.name] = rng.choices(values, weights=weights, k=1)[0]
        title = _make_title(schema, attributes, rng)
        products.append(
            Product(
                pid=f"{schema.domain[:2].upper()}{i:07d}",
                domain=schema.domain,
                attributes=attributes,
                title=title,
            )
        )
    return products


def titles_of(products: list[Product]) -> dict[str, str]:
    """``pid -> title`` mapping (the IC-S baseline's input)."""
    return {p.pid: p.title for p in products}


def matching_products(
    products: list[Product], criteria: dict[str, str]
) -> list[Product]:
    """Products whose attributes satisfy all the given equalities.

    This is the *ground-truth* result of an attribute query, used to
    study how search-engine noise propagates into the input sets.
    """
    return [
        p
        for p in products
        if all(p.attributes.get(k) == v for k, v in criteria.items())
    ]
