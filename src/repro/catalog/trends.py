"""Trend detection over query logs (paper Sections 5.1 and 5.4).

Platforms capitalize on short-lived trends (the paper's Kobe-memorabilia
spike) by skewing the input towards recent periods. This module detects
which queries are actually trending — recent demand far above their
historical baseline — so the recency window isn't applied blindly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.queries import QueryLog, RawQuery


@dataclass(frozen=True)
class Trend:
    """One detected demand spike."""

    text: str
    recent_daily: float
    baseline_daily: float
    lift: float  # recent / max(baseline, eps)


def detect_trending_queries(
    log: QueryLog,
    window: int = 14,
    min_lift: float = 3.0,
    min_recent_daily: float = 5.0,
) -> list[Trend]:
    """Queries whose recent demand is a multiple of their baseline.

    ``window`` is the recent period (days); the baseline is the mean
    daily count over everything before it. New queries (zero baseline)
    qualify through ``min_recent_daily`` alone. Strongest lifts first.
    """
    if window <= 0 or window >= log.days:
        raise ValueError(f"window must be in (0, {log.days}), got {window}")
    trends = []
    for q in log.queries:
        recent = sum(q.daily_counts[-window:]) / window
        history = q.daily_counts[:-window]
        baseline = sum(history) / len(history) if history else 0.0
        if recent < min_recent_daily:
            continue
        lift = recent / baseline if baseline > 0 else float("inf")
        if lift >= min_lift:
            trends.append(
                Trend(
                    text=q.text,
                    recent_daily=recent,
                    baseline_daily=baseline,
                    lift=lift,
                )
            )
    trends.sort(key=lambda t: (-t.lift, -t.recent_daily, t.text))
    return trends


def fading_queries(
    log: QueryLog,
    window: int = 14,
    max_ratio: float = 0.3,
    min_baseline_daily: float = 5.0,
) -> list[RawQuery]:
    """Queries whose demand collapsed recently (e.g. post-World-Cup).

    The paper's taxonomists keep such categories alive by raising their
    weights manually; surfacing them is the automatic half of that
    workflow.
    """
    if window <= 0 or window >= log.days:
        raise ValueError(f"window must be in (0, {log.days}), got {window}")
    fading = []
    for q in log.queries:
        recent = sum(q.daily_counts[-window:]) / window
        history = q.daily_counts[:-window]
        baseline = sum(history) / len(history) if history else 0.0
        if baseline >= min_baseline_daily and recent <= max_ratio * baseline:
            fading.append(q)
    fading.sort(key=lambda q: q.text)
    return fading
