"""Named synthetic datasets mirroring the paper's A-E.

The paper's private XYZ datasets (A-D) and its public combination E
(BestBuy queries over the Amazon Electronics catalog) are not available
offline, so each is replaced by a synthetic stand-in with the same
domain, the same relative proportions, and — for E — the paper's
uniform weights. ``scale=1.0`` reproduces the paper's full sizes; the
default scale keeps pure-Python experiment times reasonable while
preserving result *shapes* (see DESIGN.md Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.attributes import SCHEMAS, DomainSchema
from repro.catalog.products import Product, generate_products, titles_of
from repro.catalog.queries import QueryLog, generate_query_log
from repro.catalog.taxonomy import build_existing_tree
from repro.core.tree import CategoryTree
from repro.search.engine import SearchEngine


@dataclass(frozen=True)
class DatasetSpec:
    """Paper-documented size of one dataset plus our default repro size.

    ``paper_queries`` counts *raw* queries before preprocessing (the
    paper reports D at 100K raw, 20K after merging); ``default_queries``
    and ``default_items`` are the sizes used when ``scale`` is omitted.
    """

    name: str
    domain: str
    paper_queries: int
    paper_items: int
    default_queries: int
    default_items: int
    uniform_weights: bool = False
    taxonomy_order: tuple[str, ...] = ("product_type", "brand", "color")


DATASET_SPECS: dict[str, DatasetSpec] = {
    "A": DatasetSpec("A", "fashion", 900, 28_000, 120, 1_600),
    "B": DatasetSpec("B", "fashion", 2_400, 94_000, 240, 3_600),
    "C": DatasetSpec("C", "fashion", 6_000, 340_000, 320, 5_000),
    "D": DatasetSpec("D", "electronics", 100_000, 1_200_000, 1_000, 16_000),
    # E: BestBuy queries over Amazon Electronics; public data has no
    # frequency information, so weights are uniform.
    "E": DatasetSpec(
        "E", "electronics", 5_000, 100_000, 280, 4_000,
        uniform_weights=True,
    ),
    # Stand-ins for the paper's other public sets (Section 5.2): the
    # CrowdFlower search-relevance data, the HomeDepot product-search
    # data, and the Victoria's Secret innerwear catalog. All public
    # data is uniform-weighted.
    "CrowdFlower": DatasetSpec(
        "CrowdFlower", "electronics", 2_600, 30_000, 150, 2_000,
        uniform_weights=True,
    ),
    "HomeDepot": DatasetSpec(
        "HomeDepot", "home", 11_000, 54_000, 200, 3_000,
        uniform_weights=True,
        taxonomy_order=("product_type", "brand", "room"),
    ),
    "VictoriasSecret": DatasetSpec(
        "VictoriasSecret", "innerwear", 1_100, 600_000, 120, 2_000,
        uniform_weights=True,
    ),
}


@dataclass
class SyntheticDataset:
    """A fully materialized dataset: catalog, existing tree, queries."""

    name: str
    schema: DomainSchema
    products: list[Product]
    titles: dict[str, str]
    existing_tree: CategoryTree
    query_log: QueryLog
    engine: SearchEngine
    uniform_weights: bool = False
    trend_queries: list[str] = field(default_factory=list)

    @property
    def n_items(self) -> int:
        return len(self.products)

    @property
    def n_queries(self) -> int:
        return len(self.query_log)


def load_dataset(
    name: str,
    scale: float | None = None,
    seed: int = 0,
    trend_queries: list[str] | None = None,
    synonym_fraction: float = 0.25,
) -> SyntheticDataset:
    """Materialize one of the named datasets at a given scale.

    ``scale`` multiplies the paper's sizes directly (``1.0`` = paper
    scale); when omitted, each dataset's default repro size applies.
    ``synonym_fraction`` controls query-log redundancy — the paper's raw
    logs carry far more (its merging step shrank D from 100K to 20K
    queries, i.e. ~80% near-duplicate mass); raise it for experiments
    that depend on redundancy, like the train/test split.
    """
    spec = DATASET_SPECS[name]
    if scale is None:
        n_items = spec.default_items
        n_queries = spec.default_queries
    else:
        n_items = max(200, round(spec.paper_items * scale))
        n_queries = max(40, round(spec.paper_queries * scale))
    schema = SCHEMAS[spec.domain]

    products = generate_products(schema, n_items, seed=seed)
    titles = titles_of(products)
    existing_tree = build_existing_tree(
        products, list(spec.taxonomy_order), min_size=max(4, n_items // 400)
    )
    query_log = generate_query_log(
        schema,
        n_queries,
        seed=seed + 1,
        synonym_fraction=synonym_fraction,
        trend_queries=trend_queries,
    )
    engine = SearchEngine()
    engine.add_documents(titles)
    return SyntheticDataset(
        name=name,
        schema=schema,
        products=products,
        titles=titles,
        existing_tree=existing_tree,
        query_log=query_log,
        engine=engine,
        uniform_weights=spec.uniform_weights,
        trend_queries=list(trend_queries or []),
    )
