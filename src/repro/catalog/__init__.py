"""Synthetic e-commerce catalogs, taxonomies, and query logs."""

from repro.catalog.attributes import ELECTRONICS, FASHION, SCHEMAS, Attribute, DomainSchema
from repro.catalog.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    SyntheticDataset,
    load_dataset,
)
from repro.catalog.products import (
    Product,
    generate_products,
    matching_products,
    titles_of,
)
from repro.catalog.queries import QueryLog, RawQuery, TrendEvent, generate_query_log
from repro.catalog.taxonomy import (
    build_existing_tree,
    tree_categories_as_input_sets,
)
from repro.catalog.trends import Trend, detect_trending_queries, fading_queries

__all__ = [
    "Attribute",
    "DATASET_SPECS",
    "DatasetSpec",
    "DomainSchema",
    "ELECTRONICS",
    "FASHION",
    "Product",
    "QueryLog",
    "RawQuery",
    "SCHEMAS",
    "SyntheticDataset",
    "Trend",
    "TrendEvent",
    "build_existing_tree",
    "detect_trending_queries",
    "fading_queries",
    "generate_products",
    "generate_query_log",
    "load_dataset",
    "matching_products",
    "titles_of",
    "tree_categories_as_input_sets",
]
