"""Synthetic search-query logs.

Queries are attribute-value conjunctions ("black adidas shirt") with
Zipf-distributed daily frequencies over a 90-day window (the paper's
reconstruction period), plus a configurable fraction of incoherent
noise queries and optional *trend events* — queries whose demand spikes
late in the window (the paper's Kobe-memorabilia scenario).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.catalog.attributes import DomainSchema
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class RawQuery:
    """One query string with its per-day submission counts."""

    text: str
    daily_counts: tuple[int, ...]
    coherent: bool = True

    @property
    def total(self) -> int:
        return sum(self.daily_counts)

    @property
    def mean_daily(self) -> float:
        if not self.daily_counts:
            return 0.0
        return self.total / len(self.daily_counts)

    def min_daily(self) -> int:
        return min(self.daily_counts) if self.daily_counts else 0


@dataclass(frozen=True)
class TrendEvent:
    """A late-window demand spike for one query."""

    text: str
    start_day: int
    magnitude: int


@dataclass
class QueryLog:
    """A full window of raw queries."""

    queries: list[RawQuery]
    days: int = 90
    trend_events: list[TrendEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def recent_weighted(self, window: int) -> dict[str, float]:
        """Mean daily count over only the last ``window`` days.

        Platforms capitalize on short-lived trends by skewing the input
        towards recent periods (paper Section 5.1).
        """
        return {
            q.text: sum(q.daily_counts[-window:]) / window
            for q in self.queries
        }


_JUNK_TOKENS = (
    "asdf", "zzz", "fhqwhgads", "free", "cheap", "stuff", "best",
    "thing", "xyz", "random", "item", "lot",
)


def _conjunction_query(
    schema: DomainSchema, rng: random.Random
) -> str:
    """Sample an attribute conjunction, ordered adjective-first.

    The product type is drawn first; modifiers come only from attributes
    applicable to it (no "long sleeve shoes" queries).
    """
    head_attr = schema.attribute(schema.head_attribute)
    head = rng.choices(
        list(head_attr.values), weights=head_attr.weights(), k=1
    )[0]
    modifiers = [
        attr
        for attr in schema.attributes
        if attr.name != head_attr.name and attr.applicable(head)
    ]
    n_modifiers = rng.choices((0, 1, 2), weights=(2, 6, 2), k=1)[0]
    picked = rng.sample(modifiers, k=min(n_modifiers, len(modifiers)))
    words = [
        rng.choices(list(attr.values), weights=attr.weights(), k=1)[0]
        for attr in picked
    ]
    words.append(head)
    return " ".join(words)


def _daily_counts(
    base: float, days: int, rng: random.Random
) -> tuple[int, ...]:
    """Noisy-but-steady demand around a base daily rate (always >= 1)."""
    counts = []
    for _ in range(days):
        noisy = base * (0.7 + 0.6 * rng.random())
        counts.append(max(1, round(noisy)))
    return tuple(counts)


def generate_query_log(
    schema: DomainSchema,
    n_queries: int,
    days: int = 90,
    seed: int = 0,
    noise_fraction: float = 0.05,
    rare_fraction: float = 0.1,
    synonym_fraction: float = 0.25,
    trend_queries: list[str] | None = None,
) -> QueryLog:
    """Sample a deduplicated query log.

    ``noise_fraction`` of the queries are incoherent token soup;
    ``rare_fraction`` are sporadic (days with zero submissions, so the
    consecutive-frequency cleaning step drops them);
    ``synonym_fraction`` are near-synonym variants of earlier queries
    (the redundancy the paper's merging step removes — it more than
    halved the XYZ query counts); trend queries get a spike over the
    final two weeks of the window.
    """
    rng = make_rng(seed)
    texts: dict[str, RawQuery] = {}
    attempts = 0
    while len(texts) < n_queries and attempts < n_queries * 30:
        attempts += 1
        roll = rng.random()
        coherent = True
        if roll < noise_fraction:
            text = " ".join(
                rng.sample(_JUNK_TOKENS, k=rng.randrange(2, 4))
            )
            coherent = False
        elif roll < noise_fraction + synonym_fraction and texts:
            # A near-synonym of an existing query: reordered words or a
            # pluralized head ("black shirt" vs "shirt black" /
            # "black shirts"). Result sets are (near-)identical, which is
            # what makes the paper's query-merging step worthwhile.
            base = rng.choice(
                [q.text for q in texts.values() if q.coherent] or ["item"]
            )
            words = base.split()
            if len(words) > 1 and rng.random() < 0.5:
                rng.shuffle(words)
                text = " ".join(words)
            else:
                text = " ".join(words[:-1] + [words[-1] + "s"])
        else:
            text = _conjunction_query(schema, rng)
        if text in texts:
            continue
        # Zipf-like popularity by arrival rank.
        base = 30.0 / (1 + len(texts)) ** 0.35 + 2.0
        counts = list(_daily_counts(base, days, rng))
        if rng.random() < rare_fraction:
            # Sporadic demand: silent on a random fifth of the days.
            for day in rng.sample(range(days), k=max(1, days // 5)):
                counts[day] = 0
        texts[text] = RawQuery(
            text=text, daily_counts=tuple(counts), coherent=coherent
        )

    events = []
    for text in trend_queries or []:
        start = max(0, days - 14)
        magnitude = 40 + rng.randrange(20)
        counts = [0] * days
        for day in range(start, days):
            counts[day] = magnitude + rng.randrange(10)
        texts[text] = RawQuery(text=text, daily_counts=tuple(counts))
        events.append(
            TrendEvent(text=text, start_day=start, magnitude=magnitude)
        )
    return QueryLog(queries=list(texts.values()), days=days, trend_events=events)
