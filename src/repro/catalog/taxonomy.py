"""Existing-tree generation: a simulated taxonomist-built category tree.

Real platforms partition the catalog along a fixed attribute order
(type, then brand, then color, ...), the categorization the paper's ET
baseline represents. Categories carry human-readable labels so they can
also serve as weighted input sets for the conservative-update and
Table 1 experiments.
"""

from __future__ import annotations

from repro.catalog.products import Product
from repro.core.input_sets import InputSet
from repro.core.tree import Category, CategoryTree


def build_existing_tree(
    products: list[Product],
    attribute_order: list[str],
    min_size: int = 8,
) -> CategoryTree:
    """Recursively partition products by attribute values.

    A group stops splitting when it is smaller than ``min_size`` or the
    attribute order is exhausted; its items form a leaf category.
    """
    tree = CategoryTree()

    def split(group: list[Product], parent: Category, depth: int) -> None:
        if depth >= len(attribute_order) or len(group) < min_size:
            for product in group:
                tree.assign_item(parent, product.pid)
            return
        by_value: dict[str, list[Product]] = {}
        for product in group:
            by_value.setdefault(
                product.attributes[attribute_order[depth]], []
            ).append(product)
        if len(by_value) == 1:
            # A degenerate level adds no information; skip it.
            split(group, parent, depth + 1)
            return
        for value in sorted(by_value):
            members = by_value[value]
            if len(members) < min_size:
                # Too small for a category of its own at this level.
                for product in members:
                    tree.assign_item(parent, product.pid)
                continue
            label = value if parent.is_root else f"{parent.label} / {value}"
            child = tree.add_category((), parent=parent, label=label)
            split(members, child, depth + 1)

    split(products, tree.root, 0)
    return tree


def tree_categories_as_input_sets(
    tree: CategoryTree,
    start_sid: int = 0,
    weight: float = 1.0,
    threshold: float | None = None,
    source: str = "existing",
) -> list[InputSet]:
    """Non-root, non-empty categories as candidate input sets.

    The paper's conservative-update workflow adds the existing tree's
    categories to the input, with weights modulating how strongly the
    current categorization is preserved.
    """
    sets = []
    sid = start_sid
    for cat in tree.non_root_categories():
        if not cat.items:
            continue
        sets.append(
            InputSet(
                sid=sid,
                items=frozenset(cat.items),
                weight=weight,
                threshold=threshold,
                label=cat.label or f"category-{cat.cid}",
                source=source,
            )
        )
        sid += 1
    return sets
