"""Attribute schemas for synthetic product catalogs.

The paper's datasets come from the Fashion (A, B, C) and Electronics
(D, E) domains. Products are attribute combinations — exactly the
structure that makes candidate categories overlap, nest, and conflict:
"black shirts" and "adidas shirts" intersect without nesting, which is
the paper's prototypical 2-conflict.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Attribute:
    """One product attribute: a name, its values, and a popularity skew.

    Values are sampled with Zipf-like weights ``1/(rank+1)^skew``, so
    early values dominate the catalog the way popular brands do.
    ``applies_to`` restricts a conditional attribute to certain head
    values (sleeve length only exists for tops, storage only for
    storage-bearing electronics); ``None`` means universal.
    """

    name: str
    values: tuple[str, ...]
    skew: float = 0.8
    in_title_probability: float = 0.9
    applies_to: tuple[str, ...] | None = None

    def weights(self) -> list[float]:
        return [1.0 / (i + 1) ** self.skew for i in range(len(self.values))]

    def applicable(self, head_value: str) -> bool:
        return self.applies_to is None or head_value in self.applies_to


@dataclass(frozen=True)
class DomainSchema:
    """A product domain: its attributes plus title noise vocabulary."""

    domain: str
    attributes: tuple[Attribute, ...]
    noise_tokens: tuple[str, ...]
    # The attribute whose value always opens the title (the product type).
    head_attribute: str

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(f"no attribute named {name!r} in {self.domain}")

    def attribute_names(self) -> list[str]:
        return [attr.name for attr in self.attributes]


FASHION = DomainSchema(
    domain="fashion",
    head_attribute="product_type",
    attributes=(
        Attribute(
            "product_type",
            (
                "shirt", "pants", "dress", "jacket", "shoes",
                "skirt", "shorts", "sweater", "socks", "hat",
            ),
            skew=0.6,
            in_title_probability=1.0,
        ),
        Attribute(
            "brand",
            (
                "nike", "adidas", "zara", "levis", "puma",
                "gap", "reebok", "umbro", "guess", "diesel",
            ),
            skew=0.9,
        ),
        Attribute(
            "color",
            (
                "black", "white", "blue", "red", "grey",
                "green", "pink", "navy", "brown", "yellow",
            ),
            skew=0.7,
        ),
        Attribute("gender", ("men", "women", "kids"), skew=0.4),
        Attribute(
            "material",
            ("cotton", "polyester", "denim", "wool", "leather", "silk"),
            skew=0.8,
            in_title_probability=0.5,
        ),
        Attribute(
            "sleeve",
            ("long sleeve", "short sleeve", "sleeveless"),
            skew=0.5,
            in_title_probability=0.4,
            applies_to=("shirt", "dress", "jacket", "sweater"),
        ),
    ),
    noise_tokens=(
        "classic", "premium", "casual", "sport", "vintage",
        "slim", "regular", "new", "sale", "original",
    ),
)

ELECTRONICS = DomainSchema(
    domain="electronics",
    head_attribute="product_type",
    attributes=(
        Attribute(
            "product_type",
            (
                "phone", "laptop", "camera", "tablet", "tv",
                "headphones", "speaker", "monitor", "keyboard", "mouse",
                "charger", "memory card", "case",
            ),
            skew=0.5,
            in_title_probability=1.0,
        ),
        Attribute(
            "brand",
            (
                "samsung", "apple", "sony", "lg", "canon",
                "dell", "hp", "lenovo", "bose", "jbl",
                "sandisk", "anker", "logitech", "nikon",
            ),
            skew=0.9,
        ),
        Attribute(
            "color",
            ("black", "white", "silver", "grey", "blue", "red", "gold"),
            skew=0.9,
            in_title_probability=0.6,
        ),
        Attribute(
            "storage",
            ("32gb", "64gb", "128gb", "256gb", "512gb", "1tb"),
            skew=0.6,
            in_title_probability=0.5,
            applies_to=("phone", "laptop", "tablet", "memory card"),
        ),
        Attribute(
            "condition",
            ("new", "refurbished", "open box"),
            skew=1.4,
            in_title_probability=0.3,
        ),
    ),
    noise_tokens=(
        "pro", "max", "plus", "ultra", "wireless",
        "portable", "smart", "hd", "original", "bundle",
    ),
)

HOME = DomainSchema(
    domain="home",
    head_attribute="product_type",
    attributes=(
        Attribute(
            "product_type",
            (
                "drill", "hammer", "ladder", "paint", "faucet",
                "lamp", "shelf", "rug", "curtain", "heater", "fan",
            ),
            skew=0.5,
            in_title_probability=1.0,
        ),
        Attribute(
            "brand",
            (
                "dewalt", "bosch", "makita", "ryobi", "stanley",
                "philips", "ikea", "behr", "moen", "honeywell",
            ),
            skew=0.9,
        ),
        Attribute(
            "color",
            ("black", "white", "grey", "silver", "beige", "oak"),
            skew=0.8,
            in_title_probability=0.5,
        ),
        Attribute(
            "power",
            ("corded", "cordless", "manual"),
            skew=0.6,
            in_title_probability=0.4,
            applies_to=("drill", "heater", "fan", "lamp"),
        ),
        Attribute(
            "room",
            ("kitchen", "bathroom", "bedroom", "garage", "garden"),
            skew=0.5,
            in_title_probability=0.4,
        ),
    ),
    noise_tokens=(
        "heavy", "duty", "compact", "deluxe", "value",
        "pack", "set", "modern", "classic", "premium",
    ),
)

INNERWEAR = DomainSchema(
    domain="innerwear",
    head_attribute="product_type",
    attributes=(
        Attribute(
            "product_type",
            ("bra", "brief", "camisole", "bodysuit", "slip", "legging"),
            skew=0.5,
            in_title_probability=1.0,
        ),
        Attribute(
            "brand",
            ("victoria", "calvin", "hanes", "maidenform", "warner"),
            skew=0.9,
        ),
        Attribute(
            "color",
            ("black", "white", "nude", "pink", "red", "navy"),
            skew=0.7,
        ),
        Attribute(
            "material",
            ("cotton", "lace", "microfiber", "silk"),
            skew=0.7,
            in_title_probability=0.6,
        ),
        Attribute(
            "style",
            ("wireless", "push up", "seamless", "sport"),
            skew=0.6,
            in_title_probability=0.5,
            applies_to=("bra", "bodysuit"),
        ),
    ),
    noise_tokens=(
        "comfort", "smooth", "everyday", "stretch", "soft",
        "classic", "invisible", "light",
    ),
)

SCHEMAS = {
    "fashion": FASHION,
    "electronics": ELECTRONICS,
    "home": HOME,
    "innerwear": INNERWEAR,
}
