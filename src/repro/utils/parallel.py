"""Parallel mapping helper.

The paper notes that CTCR is highly parallelizable: all 2-conflicts are
computed in parallel, as are per-category cover scores in the item
assignment phase. :func:`parallel_map` is the single switch point — with
``n_jobs=1`` (the default) everything runs serially and deterministically,
while ``n_jobs>1`` fans chunks out to a process pool. Current consumers:
CTCR's pairwise classification, the per-component hypergraph MIS solves
(``--mis-jobs``), and the blocked popcount rows behind CCT's pooled
embedding pass (``BitsetUniverse.pairwise_intersections``).

Tracing (:mod:`repro.observability`) survives the pool: when the parent
has an enabled tracer, each worker is given a fresh tracer through the
pool initializer and every chunk ships its counter deltas back alongside
its results, so parent counters are identical to a serial run.  Worker
span timings are deliberately *not* merged — concurrent wall clocks do
not add up; the parent's enclosing span already times the fan-out.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, Sequence, TypeVar

from repro.observability import Tracer, get_tracer, set_tracer

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(n_jobs: int) -> int:
    """Normalize an ``n_jobs`` request: ``-1`` means all CPUs."""
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def chunked(seq: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split a sequence into at most ``n_chunks`` contiguous chunks."""
    if not seq:
        return []
    n_chunks = max(1, min(n_chunks, len(seq)))
    size, extra = divmod(len(seq), n_chunks)
    chunks: list[list[T]] = []
    start = 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(seq[start:end]))
        start = end
    return chunks


def chunked_by_size(seq: Sequence[T], chunk_size: int) -> list[list[T]]:
    """Split a sequence into contiguous chunks of ``chunk_size`` items."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        list(seq[start : start + chunk_size])
        for start in range(0, len(seq), chunk_size)
    ]


# -- tracing shims (module-level so they pickle into workers) --------------


def _traced_initializer(initializer: Callable | None, initargs: tuple) -> None:
    """Worker bootstrap: install a fresh tracer, then the caller's state."""
    set_tracer(Tracer())
    if initializer is not None:
        initializer(*initargs)


def _traced_chunk(fn: Callable, chunk: list) -> tuple[list, dict[str, int]]:
    """Run one chunk and return its results plus worker counter deltas.

    Workers persist across chunks, so deltas are measured against a
    snapshot taken at chunk entry rather than assuming zeroed counters.
    """
    tracer = get_tracer()
    before = dict(tracer.counters)
    results = fn(chunk)
    delta = {
        name: value - before.get(name, 0)
        for name, value in tracer.counters.items()
        if value != before.get(name, 0)
    }
    return results, delta


def parallel_map(
    fn: Callable[[list[T]], list[R]],
    items: Sequence[T],
    n_jobs: int = 1,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    chunk_size: int | None = None,
) -> list[R]:
    """Apply a chunk-level function over ``items``, preserving order.

    ``fn`` receives a chunk (list) of items and returns a list of results;
    chunk results are concatenated in order, so the output is identical
    for any ``n_jobs``. ``fn`` must be picklable (a module-level function)
    when ``n_jobs > 1``.

    ``initializer(*initargs)`` installs shared read-only state once per
    worker process (and is simply called inline when running serially).
    Large payloads — e.g. a packed bit matrix the chunks index into — ride
    along exactly once per worker instead of being re-pickled per chunk.

    By default items split into ``n_jobs * 4`` even chunks — right for
    homogeneous work. Pass ``chunk_size`` when item costs are wildly
    uneven (e.g. MIS components sorted by size): ``chunk_size=1`` gives
    every item its own pool task so one giant item cannot strand the
    other workers behind it.
    """
    n_jobs = resolve_jobs(n_jobs)
    if n_jobs == 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return fn(list(items))
    if chunk_size is not None:
        chunks = chunked_by_size(items, chunk_size)
    else:
        chunks = chunked(items, n_jobs * 4)
    results: list[R] = []
    tracer = get_tracer()
    if tracer.enabled:
        wrapped = partial(_traced_chunk, fn)
        with ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=_traced_initializer,
            initargs=(initializer, initargs),
        ) as pool:
            for part, delta in pool.map(wrapped, chunks):
                results.extend(part)
                tracer.merge_counters(delta)
        return results
    with ProcessPoolExecutor(
        max_workers=n_jobs, initializer=initializer, initargs=initargs
    ) as pool:
        for part in pool.map(fn, chunks):
            results.extend(part)
    return results
