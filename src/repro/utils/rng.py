"""Deterministic random number generation.

Every stochastic component in the library threads an explicit seed
through :func:`make_rng`, so datasets, algorithms, and experiments are
reproducible run to run.
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Build (or pass through) a :class:`random.Random`.

    Accepts an integer seed, an existing generator (returned as-is so
    callers can share state), or ``None`` for a fixed default seed —
    the library never uses nondeterministic entropy.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(0 if seed is None else seed)


def derive_rng(rng: random.Random, stream: str) -> random.Random:
    """A child generator for an independent named stream.

    Lets one master seed drive several components without their draws
    interleaving (changing one component does not perturb the others).
    The derivation avoids :func:`hash` on strings, which is salted per
    process and would break run-to-run determinism.
    """
    base = rng.getrandbits(32)
    return random.Random(base ^ zlib.crc32(stream.encode("utf-8")))
