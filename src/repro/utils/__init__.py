"""Small shared utilities: parallel mapping, seeded RNG, timing."""

from repro.utils.parallel import parallel_map
from repro.utils.rng import make_rng
from repro.utils.timer import Timer

__all__ = ["Timer", "make_rng", "parallel_map"]
