"""Misassignment detection (paper Section 5.4, "Identifying errors").

Taxonomists routinely search for suboptimal assignments with a tool that
flags high pairwise distances between embeddings of items within a
category — the "Nike Blazer under Blazers" example. This module
reproduces that tool over TF-IDF title embeddings: an item whose
similarity to its category's centroid falls far below the category's
average is reported for manual review.

The same relative-threshold idiom powers
:func:`detect_distribution_outliers`: given an observed and an expected
share distribution over arbitrary keys, flag the keys whose shares
diverge by more than a multiplicative factor. The serving analytics
drift detector (:mod:`repro.analytics.drift`) feeds it live per-category
traffic against build-time weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.tree import CategoryTree
from repro.embeddings.text import tfidf_vectors
from repro.embeddings.vectors import centroid, cosine

Item = Hashable

# Back-compat aliases: these helpers started here before being promoted
# to repro.embeddings.vectors.
_centroid = centroid
_cosine = cosine


@dataclass(frozen=True)
class OutlierReport:
    """One suspicious item assignment."""

    cid: int
    category_label: str
    item: Item
    similarity_to_centroid: float
    category_average: float


def detect_misassigned_items(
    tree: CategoryTree,
    titles: dict[Item, str],
    relative_threshold: float = 0.5,
    min_category_size: int = 4,
    leaf_only: bool = True,
) -> list[OutlierReport]:
    """Flag items far from their category's semantic centroid.

    An item is reported when its centroid similarity is below
    ``relative_threshold`` times the category's average centroid
    similarity. Results are sorted most-suspicious first.
    """
    item_list = sorted(titles, key=str)
    vectors = tfidf_vectors([titles[item] for item in item_list])
    vec_of = dict(zip(item_list, vectors))

    reports: list[OutlierReport] = []
    categories = tree.leaves() if leaf_only else list(tree.non_root_categories())
    for cat in categories:
        members = [item for item in cat.items if item in vec_of]
        if len(members) < min_category_size:
            continue
        center = centroid([vec_of[item] for item in members])
        sims = {item: cosine(vec_of[item], center) for item in members}
        average = sum(sims.values()) / len(sims)
        if average <= 0:
            continue
        for item, sim in sims.items():
            if sim < relative_threshold * average:
                reports.append(
                    OutlierReport(
                        cid=cat.cid,
                        category_label=cat.label or f"C{cat.cid}",
                        item=item,
                        similarity_to_centroid=sim,
                        category_average=average,
                    )
                )
    reports.sort(key=lambda r: r.similarity_to_centroid)
    return reports


@dataclass(frozen=True)
class DistributionOutlier:
    """One key whose observed share diverges from its expected share.

    ``ratio`` is the divergence factor ``max(obs/exp, exp/obs)`` (after
    smoothing), so 2.0 reads "twice the expected share, or half of it".
    """

    key: Hashable
    observed: float
    expected: float
    ratio: float


def detect_distribution_outliers(
    observed: dict,
    expected: dict,
    relative_threshold: float = 2.0,
    min_mass: float = 0.0,
    smoothing: float = 1e-3,
) -> list[DistributionOutlier]:
    """Flag keys whose observed share diverges from the expected one.

    Both arguments map keys to non-negative shares (they need not sum to
    one; missing keys count as zero). A key is reported when its
    divergence factor reaches ``relative_threshold`` — the same
    relative-to-baseline rule :func:`detect_misassigned_items` applies
    to centroid similarities. Keys where both shares are below
    ``min_mass`` are ignored (tail noise), and ``smoothing`` keeps
    zero-share keys finite. Results are sorted most-divergent first,
    ties broken by key order for determinism.
    """
    outliers: list[DistributionOutlier] = []
    for key in sorted(set(observed) | set(expected), key=str):
        obs = float(observed.get(key, 0.0))
        exp = float(expected.get(key, 0.0))
        if max(obs, exp) < min_mass:
            continue
        ratio = (obs + smoothing) / (exp + smoothing)
        divergence = max(ratio, 1.0 / ratio)
        if divergence >= relative_threshold:
            outliers.append(
                DistributionOutlier(
                    key=key, observed=obs, expected=exp, ratio=divergence
                )
            )
    outliers.sort(key=lambda r: (-r.ratio, str(r.key)))
    return outliers
