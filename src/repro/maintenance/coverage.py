"""Coverage analysis and the rescue workflow (paper Sections 3.1, 5.4).

When input sets stay uncovered, the paper's practical remedy is to
*reemploy the algorithm with reduced thresholds for uncovered queries* —
underrepresented categories (e.g. seasonal collectibles) get their
weights raised and thresholds lowered, and items appearing only in
uncovered queries are surfaced for a dedicated category.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import TreeBuilder
from repro.core.input_sets import InputSet, OCTInstance
from repro.core.scoring import ScoreReport, score_tree
from repro.core.tree import CategoryTree
from repro.core.variants import Variant

MIN_THRESHOLD = 0.05


def uncovered_sets(
    instance: OCTInstance, report: ScoreReport
) -> list[InputSet]:
    """The input sets the tree failed to cover, heaviest first."""
    missed = [
        instance.get(sid)
        for sid, entry in report.per_set.items()
        if not entry.covered
    ]
    missed.sort(key=lambda q: -q.weight)
    return missed


def orphaned_items(instance: OCTInstance, report: ScoreReport) -> set:
    """Items appearing only in uncovered sets.

    These end up in ``C_misc``; many orphans sharing one query signal
    the need for a dedicated category (the paper lowers that query's
    threshold and reruns).
    """
    covered_items: set = set()
    for q in instance:
        if report.per_set[q.sid].covered:
            covered_items |= q.items
    orphans: set = set()
    for q in instance:
        if not report.per_set[q.sid].covered:
            orphans |= q.items - covered_items
    return orphans


def lower_uncovered_thresholds(
    instance: OCTInstance,
    report: ScoreReport,
    variant: Variant,
    factor: float = 0.8,
    weight_boost: float = 1.0,
) -> OCTInstance:
    """A new instance with relaxed thresholds for the uncovered sets.

    Each uncovered set's effective threshold is multiplied by ``factor``
    (floored at a small minimum); its weight is multiplied by
    ``weight_boost``. Covered sets keep their parameters.
    """
    if not 0.0 < factor < 1.0:
        raise ValueError("factor must be in (0, 1)")
    adjusted = []
    for q in instance:
        if report.per_set[q.sid].covered:
            adjusted.append(q)
            continue
        current = instance.effective_threshold(q, variant.delta)
        adjusted.append(
            InputSet(
                sid=q.sid,
                items=q.items,
                weight=q.weight * weight_boost,
                threshold=max(MIN_THRESHOLD, current * factor),
                label=q.label,
                source=q.source,
            )
        )
    return OCTInstance(
        adjusted,
        universe=instance.universe,
        default_bound=instance.default_bound,
    )


@dataclass
class RescueResult:
    """Outcome of the iterative rescue workflow."""

    tree: CategoryTree
    report: ScoreReport
    instance: OCTInstance
    rounds_used: int
    initially_uncovered: int
    finally_uncovered: int


def rescue_uncovered(
    builder: TreeBuilder,
    instance: OCTInstance,
    variant: Variant,
    factor: float = 0.8,
    weight_boost: float = 1.5,
    max_rounds: int = 3,
) -> RescueResult:
    """Iteratively relax uncovered sets' thresholds and rebuild.

    Stops early once everything is covered or a round stops helping.
    The returned report is computed against the *adjusted* instance —
    the relaxed thresholds are the acceptance criteria the taxonomists
    chose for those sets.
    """
    current = instance
    tree = builder.build(current, variant)
    report = score_tree(tree, current, variant)
    initially = len(current) - report.covered_count
    rounds = 0
    while rounds < max_rounds and report.covered_count < len(current):
        relaxed = lower_uncovered_thresholds(
            current, report, variant, factor=factor, weight_boost=weight_boost
        )
        new_tree = builder.build(relaxed, variant)
        new_report = score_tree(new_tree, relaxed, variant)
        rounds += 1
        if new_report.covered_count <= report.covered_count:
            current = relaxed
            break
        current, tree, report = relaxed, new_tree, new_report
    return RescueResult(
        tree=tree,
        report=report,
        instance=current,
        rounds_used=rounds,
        initially_uncovered=initially,
        finally_uncovered=len(current) - report.covered_count,
    )
