"""New-item classification into an existing tree (paper Section 5.4).

Taxonomists assign new items automatically (the paper cites Cevahir &
Murakami's large-scale categorizer); the offline stand-in here places a
new item into the leaf category whose members' TF-IDF title centroid is
most similar to the item's title.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.tree import CategoryTree
from repro.embeddings.text import tfidf_vectors
from repro.embeddings.vectors import centroid, cosine

Item = Hashable


@dataclass(frozen=True)
class Placement:
    """Suggested category for one new item."""

    item: Item
    cid: int
    category_label: str
    similarity: float


def classify_new_items(
    tree: CategoryTree,
    existing_titles: dict[Item, str],
    new_titles: dict[Item, str],
    min_category_size: int = 2,
) -> list[Placement]:
    """Suggest a leaf category for each new item by title similarity."""
    leaf_candidates = [
        cat
        for cat in tree.leaves()
        if len(cat.items) >= min_category_size and cat.label != "C_misc"
    ]
    if not leaf_candidates or not new_titles:
        return []

    all_items = sorted(existing_titles, key=str)
    new_items = sorted(new_titles, key=str)
    vectors = tfidf_vectors(
        [existing_titles[i] for i in all_items]
        + [new_titles[i] for i in new_items]
    )
    vec_of = dict(zip(all_items, vectors[: len(all_items)]))
    new_vec_of = dict(zip(new_items, vectors[len(all_items):]))

    centroids = {}
    for cat in leaf_candidates:
        members = [vec_of[i] for i in cat.items if i in vec_of]
        if members:
            centroids[cat.cid] = (cat, centroid(members))

    placements = []
    for item in new_items:
        vec = new_vec_of[item]
        best_sim, best_cat = -1.0, None
        for cat, center in centroids.values():
            sim = cosine(vec, center)
            if sim > best_sim:
                best_sim, best_cat = sim, cat
        if best_cat is not None:
            placements.append(
                Placement(
                    item=item,
                    cid=best_cat.cid,
                    category_label=best_cat.label or f"C{best_cat.cid}",
                    similarity=best_sim,
                )
            )
    return placements


def apply_placements(
    tree: CategoryTree, placements: list[Placement]
) -> None:
    """Insert the suggested items into the tree (with upward closure)."""
    by_cid = {cat.cid: cat for cat in tree.categories()}
    for placement in placements:
        tree.assign_item(by_cid[placement.cid], placement.item)
