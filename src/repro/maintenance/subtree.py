"""Selective subtree rebuilds (paper Sections 2.3 and 5.4).

"A complementary solution is running the algorithms separately on
selected subtrees, where changes are desirable." A rebuild restricts the
instance to the subtree's items, runs any builder on the restriction,
and grafts the result back in place — leaving the rest of the tree
untouched, which is what makes updates conservative.
"""

from __future__ import annotations

from repro.algorithms.base import TreeBuilder
from repro.core.exceptions import InvalidTreeError
from repro.core.input_sets import InputSet, OCTInstance
from repro.core.tree import Category, CategoryTree
from repro.core.variants import Variant


def restrict_instance_to_items(
    instance: OCTInstance,
    items: frozenset,
    min_overlap: float = 0.5,
) -> OCTInstance:
    """Input sets relevant to a subtree, clipped to its items.

    A set participates when at least ``min_overlap`` of it lies inside
    the subtree; its items outside the subtree are dropped (they cannot
    legally appear there).
    """
    restricted = []
    for q in instance:
        inside = q.items & items
        if not inside:
            continue
        if len(inside) / len(q.items) < min_overlap:
            continue
        restricted.append(
            InputSet(
                sid=q.sid,
                items=inside,
                weight=q.weight,
                threshold=q.threshold,
                label=q.label,
                source=q.source,
            )
        )
    return OCTInstance(
        restricted,
        universe=items,
        default_bound=instance.default_bound,
    )


def rebuild_subtree(
    tree: CategoryTree,
    target: Category,
    instance: OCTInstance,
    variant: Variant,
    builder: TreeBuilder,
    min_overlap: float = 0.5,
) -> int:
    """Rebuild one category's subtree in place; returns new child count.

    The target keeps its identity and items; only its descendants are
    replaced by the builder's output over the restricted instance.
    """
    if target.is_root:
        raise InvalidTreeError(
            "rebuild the whole tree with the builder directly; "
            "rebuild_subtree is for proper subtrees"
        )
    sub_instance = restrict_instance_to_items(
        instance, frozenset(target.items), min_overlap=min_overlap
    )
    built = builder.build(sub_instance, variant)

    # Detach the old subtree and graft the new one.
    target.children = []
    def graft(src: Category, dst_parent: Category) -> None:
        node = tree.add_category(src.items, parent=dst_parent, label=src.label)
        node.matched_sids = list(src.matched_sids)
        for child in src.children:
            graft(child, node)

    for child in built.root.children:
        graft(child, target)
    return len(target.children)
