"""Human-in-the-loop maintenance tools (paper Section 5.4)."""

from repro.maintenance.classify import (
    Placement,
    apply_placements,
    classify_new_items,
)
from repro.maintenance.coverage import (
    RescueResult,
    lower_uncovered_thresholds,
    orphaned_items,
    rescue_uncovered,
    uncovered_sets,
)
from repro.maintenance.outliers import (
    DistributionOutlier,
    OutlierReport,
    detect_distribution_outliers,
    detect_misassigned_items,
)
from repro.maintenance.subtree import rebuild_subtree, restrict_instance_to_items

__all__ = [
    "DistributionOutlier",
    "OutlierReport",
    "Placement",
    "RescueResult",
    "apply_placements",
    "classify_new_items",
    "detect_distribution_outliers",
    "detect_misassigned_items",
    "lower_uncovered_thresholds",
    "orphaned_items",
    "rebuild_subtree",
    "rescue_uncovered",
    "restrict_instance_to_items",
    "uncovered_sets",
]
